"""repro.wasm — a self-contained WebAssembly toolchain.

Binary codec (:mod:`parser` / :mod:`encoder`), module model
(:mod:`module`), programmatic assembler (:mod:`builder`), validating
type-checker (:mod:`validation`) and a concrete interpreter
(:mod:`interpreter`).  Together these replace the EOSVM + CDT toolchain
the paper's artifact depends on.
"""

from .builder import FunctionBuilder, ModuleBuilder
from .encoder import encode_module
from .hardening import (DEFAULT_BUDGET, IngestBudget,
                        load_untrusted_module)
from .interpreter import (ExecutionLimits, HostFunc, Instance,
                          InstanceTemplate, Trap, TrapDeadline,
                          TrapIndirectCall, TrapIntegerDivide,
                          TrapIntegerOverflow, TrapMemoryOutOfBounds,
                          TrapOutOfFuel, TrapResourceLimit,
                          TrapStackOverflow, TrapUnreachable,
                          configure_translation, translation_enabled)
from .module import (DataSegment, Element, Export, Function, Global, Import,
                     Module, PAGE_SIZE)
from .opcodes import (Instr, MEMORY_INSTRUCTIONS, is_load, is_store,
                      memory_access_size)
from .parser import ParseError, parse_module
from .types import (F32, F64, FuncType, GlobalType, I32, I64, Limits,
                    MemoryType, TableType, ValType)
from .validation import (InstructionTyping, ValidationError, type_function,
                         validate_module)

__all__ = [
    "FunctionBuilder", "ModuleBuilder", "encode_module", "ExecutionLimits",
    "HostFunc", "DEFAULT_BUDGET", "IngestBudget", "Instance",
    "InstanceTemplate", "configure_translation", "translation_enabled",
    "load_untrusted_module",
    "Trap", "TrapDeadline", "TrapIndirectCall", "TrapIntegerDivide",
    "TrapIntegerOverflow", "TrapMemoryOutOfBounds", "TrapOutOfFuel",
    "TrapResourceLimit", "TrapStackOverflow", "TrapUnreachable",
    "DataSegment", "Element",
    "Export", "Function", "Global", "Import", "Module", "PAGE_SIZE", "Instr",
    "MEMORY_INSTRUCTIONS", "is_load", "is_store", "memory_access_size",
    "ParseError", "parse_module", "F32", "F64", "FuncType", "GlobalType",
    "I32", "I64", "Limits", "MemoryType", "TableType", "ValType",
    "InstructionTyping", "ValidationError", "type_function",
    "validate_module",
]

"""A programmatic assembler for WebAssembly modules.

The benchmark generator (:mod:`repro.benchgen`) uses this builder to
emit genuine EOSIO-style contract binaries — dispatcher ``apply``
function, indirect-call action dispatch, byte-stream deserialisation —
that then flow through the parser, instrumenter, interpreter and
symbolic engine exactly like Mainnet binaries would.
"""

from __future__ import annotations

from .encoder import encode_module
from .module import (DataSegment, Element, Export, Function, Global, Import,
                     Module)
from .opcodes import Instr
from .types import (FuncType, GlobalType, Limits, MemoryType, TableType,
                    ValType)

__all__ = ["ModuleBuilder", "FunctionBuilder"]


def _valtypes(names) -> tuple[ValType, ...]:
    return tuple(ValType.from_name(n) for n in names)


class FunctionBuilder:
    """Accumulates the body of one function."""

    def __init__(self, module_builder: "ModuleBuilder", name: str,
                 params, results, locals_):
        self._mb = module_builder
        self.name = name
        self.params = _valtypes(params)
        self.results = _valtypes(results)
        self.locals = list(_valtypes(locals_))
        self.body: list[Instr] = []
        self.index: int | None = None  # assigned at build()

    # -- raw emission ------------------------------------------------------
    def emit(self, op: str, *args) -> "FunctionBuilder":
        self.body.append(Instr(op, *args))
        return self

    def extend(self, instructions: list[Instr]) -> "FunctionBuilder":
        self.body.extend(instructions)
        return self

    # -- convenience -------------------------------------------------------
    def i32_const(self, value: int) -> "FunctionBuilder":
        return self.emit("i32.const", _wrap_signed(value, 32))

    def i64_const(self, value: int) -> "FunctionBuilder":
        return self.emit("i64.const", _wrap_signed(value, 64))

    def local_get(self, index: int) -> "FunctionBuilder":
        return self.emit("local.get", index)

    def local_set(self, index: int) -> "FunctionBuilder":
        return self.emit("local.set", index)

    def call(self, target: "FunctionBuilder | int | str") -> "FunctionBuilder":
        """Call a function by builder, import name or raw index.

        Builder/name targets are fixed up at :meth:`ModuleBuilder.build`
        time (function indices shift as imports are added).
        """
        self.body.append(_PendingCall(target))
        return self

    def add_local(self, valtype_name: str) -> int:
        """Declare an extra local; returns its index."""
        index = len(self.params) + len(self.locals)
        self.locals.append(ValType.from_name(valtype_name))
        return index


class _PendingCall(Instr):
    """A call whose target index is resolved at build time."""

    __slots__ = ("target",)

    def __init__(self, target):
        super().__init__("call", 0)
        self.target = target


def _wrap_signed(value: int, bits: int) -> int:
    value &= (1 << bits) - 1
    if value >= 1 << (bits - 1):
        value -= 1 << bits
    return value


class ModuleBuilder:
    """Assemble a :class:`Module` (and its binary encoding)."""

    def __init__(self) -> None:
        self._imports: list[tuple[str, str, FuncType]] = []
        self._functions: list[FunctionBuilder] = []
        self._globals: list[tuple[ValType, bool, Instr]] = []
        self._exports: list[tuple[str, str, object]] = []
        self._memory_pages: int | None = None
        self._memory_max: int | None = None
        self._table_entries: dict[int, object] = {}
        self._data: list[tuple[int, bytes]] = []
        self._start: object | None = None

    # -- declarations --------------------------------------------------------
    def import_function(self, module: str, name: str, params=(), results=()) -> int:
        """Declare a function import; returns its function index."""
        for i, (m, n, _) in enumerate(self._imports):
            if m == module and n == name:
                return i
        self._imports.append((module, name,
                              FuncType(_valtypes(params), _valtypes(results))))
        return len(self._imports) - 1

    def function(self, name: str, params=(), results=(), locals_=()) -> FunctionBuilder:
        fb = FunctionBuilder(self, name, params, results, locals_)
        self._functions.append(fb)
        return fb

    def add_memory(self, min_pages: int = 1, max_pages: int | None = None) -> None:
        self._memory_pages = min_pages
        self._memory_max = max_pages

    def add_global(self, valtype_name: str, mutable: bool, init: int | float) -> int:
        valtype = ValType.from_name(valtype_name)
        const_op = f"{valtype.name}.const"
        value = init
        if not valtype.is_float:
            value = _wrap_signed(int(init), valtype.bits)
        self._globals.append((valtype, mutable, Instr(const_op, value)))
        return len(self._globals) - 1

    def export_function(self, name: str, target: FunctionBuilder) -> None:
        self._exports.append((name, "func", target))

    def export_memory(self, name: str = "memory") -> None:
        self._exports.append((name, "memory", 0))

    def add_table_entry(self, slot: int, target: FunctionBuilder) -> None:
        """Place a function into the indirect-call table at ``slot``."""
        self._table_entries[slot] = target

    def add_data(self, offset: int, data: bytes) -> None:
        self._data.append((offset, data))

    def set_start(self, target: FunctionBuilder) -> None:
        self._start = target

    # -- assembly ---------------------------------------------------------------
    def build(self) -> Module:
        module = Module()
        for imp_module, imp_name, func_type in self._imports:
            type_index = module.add_type(func_type)
            module.imports.append(Import(imp_module, imp_name, "func",
                                         type_index))
        import_count = len(self._imports)
        for i, fb in enumerate(self._functions):
            fb.index = import_count + i
        name_to_fb = {fb.name: fb for fb in self._functions}

        def resolve(target) -> int:
            if isinstance(target, FunctionBuilder):
                return target.index
            if isinstance(target, str):
                if target in name_to_fb:
                    return name_to_fb[target].index
                raise KeyError(f"no function named {target!r}")
            return int(target)

        for fb in self._functions:
            type_index = module.add_type(FuncType(fb.params, fb.results))
            body = []
            for instr in fb.body:
                if isinstance(instr, _PendingCall):
                    body.append(Instr("call", resolve(instr.target)))
                else:
                    body.append(instr)
            module.functions.append(Function(type_index, list(fb.locals), body))
        if self._memory_pages is not None:
            module.memories.append(
                MemoryType(Limits(self._memory_pages, self._memory_max)))
        for valtype, mutable, init in self._globals:
            module.globals.append(Global(GlobalType(valtype, mutable), [init]))
        for name, kind, target in self._exports:
            index = resolve(target) if kind == "func" else int(target)
            module.exports.append(Export(name, kind, index))
        if self._table_entries:
            size = max(self._table_entries) + 1
            module.tables.append(TableType(Limits(size, size)))
            # One element segment per contiguous run.
            slots = sorted(self._table_entries)
            run_start = slots[0]
            run: list[int] = []
            prev = None
            for slot in slots:
                if prev is not None and slot != prev + 1:
                    module.elements.append(
                        Element(0, [Instr("i32.const", run_start)], run))
                    run_start, run = slot, []
                run.append(resolve(self._table_entries[slot]))
                prev = slot
            module.elements.append(
                Element(0, [Instr("i32.const", run_start)], run))
        for offset, data in self._data:
            module.data_segments.append(
                DataSegment(0, [Instr("i32.const", offset)], data))
        if self._start is not None:
            module.start = resolve(self._start)
        return module

    def build_bytes(self) -> bytes:
        return encode_module(self.build())

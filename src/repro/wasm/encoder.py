"""Encode a :class:`~repro.wasm.module.Module` into binary ``.wasm``."""

from __future__ import annotations

import struct

from .leb128 import encode_signed, encode_unsigned
from .module import (DataSegment, Element, Export, Function, Global, Import,
                     Module)
from .opcodes import OPCODES, Instr
from .types import FuncType, GlobalType, Limits, MemoryType, TableType, ValType

__all__ = ["encode_module", "encode_instruction", "encode_expr"]

MAGIC = b"\x00asm"
VERSION = b"\x01\x00\x00\x00"


def encode_module(module: Module) -> bytes:
    """Serialise ``module`` to the Wasm binary format."""
    out = bytearray(MAGIC + VERSION)
    _section(out, 1, _encode_types(module))
    _section(out, 2, _encode_imports(module))
    _section(out, 3, _encode_function_decls(module))
    _section(out, 4, _encode_tables(module))
    _section(out, 5, _encode_memories(module))
    _section(out, 6, _encode_globals(module))
    _section(out, 7, _encode_exports(module))
    if module.start is not None:
        _section(out, 8, encode_unsigned(module.start))
    _section(out, 9, _encode_elements(module))
    _section(out, 10, _encode_code(module))
    _section(out, 11, _encode_data(module))
    return bytes(out)


def _section(out: bytearray, section_id: int, payload: bytes) -> None:
    if not payload:
        return
    out.append(section_id)
    out.extend(encode_unsigned(len(payload)))
    out.extend(payload)


def _vec(items: list[bytes]) -> bytes:
    out = bytearray(encode_unsigned(len(items)))
    for item in items:
        out.extend(item)
    return bytes(out)


def _name(text: str) -> bytes:
    data = text.encode("utf-8")
    return encode_unsigned(len(data)) + data


def _limits(limits: Limits) -> bytes:
    if limits.maximum is None:
        return b"\x00" + encode_unsigned(limits.minimum)
    return (b"\x01" + encode_unsigned(limits.minimum)
            + encode_unsigned(limits.maximum))


def _functype(func_type: FuncType) -> bytes:
    out = bytearray(b"\x60")
    out.extend(encode_unsigned(len(func_type.params)))
    out.extend(p.code for p in func_type.params)
    out.extend(encode_unsigned(len(func_type.results)))
    out.extend(r.code for r in func_type.results)
    return bytes(out)


def _globaltype(global_type: GlobalType) -> bytes:
    return bytes([global_type.valtype.code, 1 if global_type.mutable else 0])


def _encode_types(module: Module) -> bytes:
    if not module.types:
        return b""
    return _vec([_functype(t) for t in module.types])


def _encode_imports(module: Module) -> bytes:
    if not module.imports:
        return b""
    entries = []
    for imp in module.imports:
        head = _name(imp.module) + _name(imp.name)
        if imp.kind == "func":
            entries.append(head + b"\x00" + encode_unsigned(imp.desc))
        elif imp.kind == "table":
            table: TableType = imp.desc
            entries.append(head + b"\x01" + bytes([table.elem_kind])
                           + _limits(table.limits))
        elif imp.kind == "memory":
            memory: MemoryType = imp.desc
            entries.append(head + b"\x02" + _limits(memory.limits))
        elif imp.kind == "global":
            entries.append(head + b"\x03" + _globaltype(imp.desc))
        else:
            raise ValueError(f"unknown import kind {imp.kind!r}")
    return _vec(entries)


def _encode_function_decls(module: Module) -> bytes:
    if not module.functions:
        return b""
    return _vec([encode_unsigned(f.type_index) for f in module.functions])


def _encode_tables(module: Module) -> bytes:
    if not module.tables:
        return b""
    return _vec([bytes([t.elem_kind]) + _limits(t.limits)
                 for t in module.tables])


def _encode_memories(module: Module) -> bytes:
    if not module.memories:
        return b""
    return _vec([_limits(m.limits) for m in module.memories])


def _encode_globals(module: Module) -> bytes:
    if not module.globals:
        return b""
    return _vec([_globaltype(g.type) + encode_expr(g.init)
                 for g in module.globals])


def _encode_exports(module: Module) -> bytes:
    if not module.exports:
        return b""
    kinds = {"func": 0, "table": 1, "memory": 2, "global": 3}
    return _vec([_name(e.name) + bytes([kinds[e.kind]])
                 + encode_unsigned(e.index) for e in module.exports])


def _encode_elements(module: Module) -> bytes:
    if not module.elements:
        return b""
    entries = []
    for elem in module.elements:
        entry = (encode_unsigned(elem.table_index) + encode_expr(elem.offset)
                 + _vec([encode_unsigned(i) for i in elem.func_indices]))
        entries.append(entry)
    return _vec(entries)


def _encode_code(module: Module) -> bytes:
    if not module.functions:
        return b""
    bodies = []
    for func in module.functions:
        body = bytearray()
        # Compress locals into (count, type) runs.
        runs: list[tuple[int, ValType]] = []
        for local in func.locals:
            if runs and runs[-1][1] is local:
                runs[-1] = (runs[-1][0] + 1, local)
            else:
                runs.append((1, local))
        body.extend(encode_unsigned(len(runs)))
        for count, valtype in runs:
            body.extend(encode_unsigned(count))
            body.append(valtype.code)
        for instr in func.body:
            body.extend(encode_instruction(instr))
        body.extend(encode_instruction(Instr("end")))
        bodies.append(encode_unsigned(len(body)) + bytes(body))
    return _vec(bodies)


def _encode_data(module: Module) -> bytes:
    if not module.data_segments:
        return b""
    entries = []
    for segment in module.data_segments:
        entries.append(encode_unsigned(segment.memory_index)
                       + encode_expr(segment.offset)
                       + encode_unsigned(len(segment.data)) + segment.data)
    return _vec(entries)


def encode_expr(instructions: list[Instr]) -> bytes:
    """Encode an init/constant expression with its terminating end."""
    out = bytearray()
    for instr in instructions:
        out.extend(encode_instruction(instr))
    out.extend(encode_instruction(Instr("end")))
    return bytes(out)


def encode_instruction(instr: Instr) -> bytes:
    code, kind = OPCODES[instr.op]
    out = bytearray([code])
    if kind == "none":
        return bytes(out)
    if kind == "block":
        blocktype = instr.args[0]
        if blocktype is None:
            out.append(0x40)
        else:
            out.append(ValType.from_name(blocktype).code)
        return bytes(out)
    if kind == "u32":
        out.extend(encode_unsigned(instr.args[0]))
        return bytes(out)
    if kind == "br_table":
        labels, default = instr.args
        out.extend(encode_unsigned(len(labels)))
        for label in labels:
            out.extend(encode_unsigned(label))
        out.extend(encode_unsigned(default))
        return bytes(out)
    if kind == "call_ind":
        out.extend(encode_unsigned(instr.args[0]))
        out.append(0x00)  # reserved table index
        return bytes(out)
    if kind == "memarg":
        align, offset = instr.args
        out.extend(encode_unsigned(align))
        out.extend(encode_unsigned(offset))
        return bytes(out)
    if kind == "i32":
        out.extend(encode_signed(instr.args[0]))
        return bytes(out)
    if kind == "i64":
        out.extend(encode_signed(instr.args[0]))
        return bytes(out)
    if kind == "f32":
        out.extend(struct.pack("<f", instr.args[0]))
        return bytes(out)
    if kind == "f64":
        out.extend(struct.pack("<d", instr.args[0]))
        return bytes(out)
    if kind == "memidx":
        out.append(0x00)
        return bytes(out)
    raise ValueError(f"unknown immediate kind {kind!r}")

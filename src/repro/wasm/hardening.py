"""Sandboxed ingestion of untrusted Wasm binaries.

RQ4-scale wild studies feed the pipeline thousands of adversarial,
possibly malformed contracts scraped from chain; at that scale the
analyzer itself is the attack surface.  :func:`load_untrusted_module`
is the single entry point through which untrusted bytes become a
:class:`~repro.wasm.module.Module`: it enforces the
:class:`IngestBudget` ceilings (byte size, section/function/local
counts, declared memory and table minimums) and converts *every*
exception escaping parse or validation — typed :class:`ParseError` /
:class:`ValidationError` as well as raw ``IndexError`` /
``RecursionError`` / ``MemoryError`` / ``OverflowError`` / bare
``ValueError`` — into a :class:`repro.resilience.MalformedModule`
diagnostic carrying the byte offset and section context, feeding the
campaign taxonomy as the non-retryable ``ingest`` stage.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..resilience.errors import MalformedModule
from ..resilience.faultinject import inject as _inject_fault
from .leb128 import ParseError
from .module import Module
from .parser import parse_module
from .validation import ValidationError, validate_module

__all__ = ["IngestBudget", "load_untrusted_module"]


@dataclass(frozen=True)
class IngestBudget:
    """Structural ceilings applied while ingesting untrusted bytes.

    Every field may be None to disable that bound.  The defaults are
    far above anything the generated corpus or real EOSIO contracts
    exhibit, but far below anything that could pressure host RAM.
    """

    max_module_bytes: int | None = 8 * 1024 * 1024
    max_types: int | None = 10_000
    max_imports: int | None = 10_000
    max_functions: int | None = 20_000
    max_locals_per_function: int | None = 50_000
    max_exports: int | None = 10_000
    max_elements: int | None = 100_000
    max_data_bytes: int | None = 4 * 1024 * 1024
    max_memory_pages: int | None = 1024
    max_table_entries: int | None = 65_536
    validate: bool = True


DEFAULT_BUDGET = IngestBudget()


def load_untrusted_module(data: bytes,
                          budget: IngestBudget | None = None,
                          sample_id: str | None = None) -> Module:
    """Parse and validate untrusted bytes under budget.

    Returns the validated :class:`Module` or raises
    :class:`~repro.resilience.errors.MalformedModule`; no other
    exception type escapes, whatever the input bytes are.
    """
    budget = budget or DEFAULT_BUDGET
    _inject_fault("ingest")
    if budget.max_module_bytes is not None \
            and len(data) > budget.max_module_bytes:
        raise MalformedModule(
            f"module is {len(data)} bytes, budget is "
            f"{budget.max_module_bytes}", sample_id=sample_id)
    try:
        module = parse_module(bytes(data), budget=budget)
    except ParseError as exc:
        raise MalformedModule(f"parse: {_bare_message(exc)}",
                              offset=exc.offset, section=exc.section,
                              sample_id=sample_id) from exc
    except MalformedModule:
        raise
    except Exception as exc:  # noqa: BLE001 — the sandbox boundary
        raise MalformedModule(
            f"parse: unhandled {type(exc).__name__}: {exc}",
            sample_id=sample_id) from exc
    _check_declared_resources(module, budget, sample_id)
    if budget.validate:
        try:
            validate_module(module)
        except ValidationError as exc:
            raise MalformedModule(f"validation: {exc}",
                                  sample_id=sample_id) from exc
        except Exception as exc:  # noqa: BLE001 — the sandbox boundary
            raise MalformedModule(
                f"validation: unhandled {type(exc).__name__}: {exc}",
                sample_id=sample_id) from exc
    return module


def _bare_message(exc: ParseError) -> str:
    # ParseError.__str__ appends the section/offset context; the
    # MalformedModule wrapper re-adds it from its own fields.
    return ValueError.__str__(exc)


def _check_declared_resources(module: Module, budget: IngestBudget,
                              sample_id: str | None) -> None:
    """Budget the resources a module *declares* (vs. what it parses
    into): memory/table minimums are pre-allocated at instantiation
    and data segments are materialised bytes, so both are part of the
    ingestion attack surface."""
    if budget.max_memory_pages is not None:
        for memtype in module.memories:
            if memtype.limits.minimum > budget.max_memory_pages:
                raise MalformedModule(
                    f"declared memory minimum {memtype.limits.minimum} "
                    f"pages exceeds budget {budget.max_memory_pages}",
                    section="memory", sample_id=sample_id)
    if budget.max_table_entries is not None:
        for tabletype in module.tables:
            if tabletype.limits.minimum > budget.max_table_entries:
                raise MalformedModule(
                    f"declared table minimum {tabletype.limits.minimum} "
                    f"exceeds budget {budget.max_table_entries}",
                    section="table", sample_id=sample_id)
    if budget.max_data_bytes is not None:
        total = sum(len(seg.data) for seg in module.data_segments)
        if total > budget.max_data_bytes:
            raise MalformedModule(
                f"data segments total {total} bytes, budget is "
                f"{budget.max_data_bytes}", section="data",
                sample_id=sample_id)

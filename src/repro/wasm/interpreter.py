"""A concrete WebAssembly interpreter (the EOSVM execution substrate).

Executes modules produced by :mod:`repro.wasm.parser` /
:mod:`repro.wasm.builder`.  Host imports (the EOSIO library APIs and
the instrumentation hooks of §3.3.1) are Python callables registered
per ``(module, name)`` pair.

Integers are held as unsigned Python ints of the appropriate width;
floats as Python floats (f32 results are rounded through a 32-bit
representation).  Traps raise :class:`Trap` subclasses, which the
EOSIO chain layer converts into reverted transactions.
"""

from __future__ import annotations

import math
import os
import struct
import time as _time
from dataclasses import dataclass
from typing import Callable, Sequence

from .module import Function, Module, PAGE_SIZE
from .opcodes import Instr, memory_access_size
from .types import F32, F64, FuncType, I32, I64, ValType

__all__ = ["Instance", "HostFunc", "Trap", "TrapUnreachable",
           "TrapIntegerDivide", "TrapMemoryOutOfBounds", "TrapStackOverflow",
           "TrapOutOfFuel", "TrapIndirectCall", "TrapIntegerOverflow",
           "TrapResourceLimit", "TrapDeadline", "ExecutionLimits",
           "InstanceTemplate", "configure_translation", "translation_enabled"]

MASK32 = 0xFFFFFFFF
MASK64 = 0xFFFFFFFFFFFFFFFF

# Process default for the direct-threaded translation layer
# (:mod:`repro.wasm.translate`).  On by default — the differential
# suite holds it to byte-identical behaviour — with two opt-outs: the
# REPRO_WASM_TRANSLATE=0 environment kill-switch and the per-instance
# ``ExecutionLimits.translate`` override (the generic interpreter stays
# the reference semantics either way).
_TRANSLATE_DEFAULT = os.environ.get("REPRO_WASM_TRANSLATE", "1") != "0"


def configure_translation(enabled: bool = True) -> bool:
    """Set the process-wide default for direct-threaded translation
    (``ExecutionLimits.translate=None`` resolves here).  Returns the
    new default.  Forked workers inherit the parent's setting."""
    global _TRANSLATE_DEFAULT
    _TRANSLATE_DEFAULT = bool(enabled)
    return _TRANSLATE_DEFAULT


def translation_enabled() -> bool:
    return _TRANSLATE_DEFAULT


class Trap(Exception):
    """Base class for Wasm traps."""


class TrapUnreachable(Trap):
    pass


class TrapIntegerDivide(Trap):
    pass


class TrapIntegerOverflow(Trap):
    pass


class TrapMemoryOutOfBounds(Trap):
    pass


class TrapStackOverflow(Trap):
    pass


class TrapOutOfFuel(Trap):
    pass


class TrapIndirectCall(Trap):
    pass


class TrapResourceLimit(Trap):
    """A hard host-resource budget (memory pages, table entries, trace
    length) was hit; the metered execution traps deterministically
    instead of exhausting host RAM."""


class TrapDeadline(Trap):
    """The per-invocation wall-clock deadline expired."""


@dataclass
class HostFunc:
    """A host-provided import: its Wasm signature and implementation.

    ``impl`` receives ``(instance, args)`` and returns a list of result
    values (empty list for void).
    """

    func_type: FuncType
    impl: Callable[["Instance", list], list]


@dataclass
class ExecutionLimits:
    """Deterministic execution bounds standing in for EOSVM's CPU
    metering.  ``fuel`` counts executed instructions.

    The remaining fields meter host resources against hostile
    contracts: ``max_memory_pages`` caps linear memory (instantiation
    and ``memory.grow``) even when the module declares no maximum,
    ``max_table_entries`` caps the funcref table, the trace budgets
    bound the instrumentation trace a single execution may emit, and
    ``deadline_s`` is a real wall-clock ceiling per top-level
    invocation.  Each may be None to disable that bound; every
    violation raises a deterministic :class:`Trap` subclass."""

    fuel: int = 5_000_000
    call_depth: int = 250
    max_memory_pages: int | None = 1024
    max_table_entries: int | None = 65_536
    max_trace_events: int | None = 1_000_000
    max_trace_bytes: int | None = 64 * 1024 * 1024
    deadline_s: float | None = None
    # Direct-threaded translation (repro.wasm.translate): True/False
    # force it on/off for instances run under these limits; None defers
    # to the process default (see configure_translation).
    translate: bool | None = None


class _ControlEntry:
    """A label on the control stack: where ``br`` jumps to and how many
    values it carries."""

    __slots__ = ("kind", "target", "arity", "stack_height")

    def __init__(self, kind: str, target: int, arity: int, stack_height: int):
        self.kind = kind
        self.target = target
        self.arity = arity
        self.stack_height = stack_height


def _build_jump_table(body: list[Instr]) -> dict[int, tuple[int, int | None]]:
    """For each block/loop/if index, find (end index, else index)."""
    table: dict[int, tuple[int, int | None]] = {}
    stack: list[tuple[int, int | None]] = []
    for pc, instr in enumerate(body):
        if instr.op in ("block", "loop", "if"):
            stack.append((pc, None))
        elif instr.op == "else":
            start, _ = stack.pop()
            stack.append((start, pc))
        elif instr.op == "end":
            if stack:
                start, else_pc = stack.pop()
                table[start] = (pc, else_pc)
    return table


def _signed(value: int, bits: int) -> int:
    sign = 1 << (bits - 1)
    return value - (1 << bits) if value & sign else value


def _f32(value: float) -> float:
    """Round a float through the 32-bit representation."""
    return struct.unpack("<f", struct.pack("<f", value))[0]


class Instance:
    """An instantiated Wasm module plus its runtime state."""

    def __init__(self, module: Module,
                 host_imports: dict[tuple[str, str], HostFunc] | None = None,
                 limits: ExecutionLimits | None = None):
        self.module = module
        self.limits = limits or ExecutionLimits()
        self.fuel = self.limits.fuel
        self.host_imports = host_imports or {}
        self._call_depth = 0
        self._deadline: float | None = None
        # Resolve the translation opt-in once; the lazy import breaks
        # the interpreter <-> translate module cycle.
        wants_translate = self.limits.translate
        if wants_translate is None:
            wants_translate = _TRANSLATE_DEFAULT
        self._translated_for = None
        if wants_translate:
            from .translate import translated_function
            self._translated_for = translated_function
        # Resolve imported functions in index order.
        self._imported: list[HostFunc] = []
        for imp in module.imports:
            if imp.kind != "func":
                continue
            host = self.host_imports.get((imp.module, imp.name))
            if host is None:
                raise KeyError(
                    f"unresolved import {imp.module}.{imp.name}")
            declared = module.types[imp.desc]
            if host.func_type != declared:
                raise TypeError(
                    f"import {imp.module}.{imp.name} signature mismatch: "
                    f"declared {declared}, host {host.func_type}")
            self._imported.append(host)
        # Memory.  The declared minimum is pre-allocated, so it must be
        # metered here — a crafted module can declare 4 GiB up front.
        self.memory = bytearray()
        self.memory_max_pages: int | None = None
        if module.memories:
            memtype = module.memories[0]
            minimum = memtype.limits.minimum
            page_cap = self.limits.max_memory_pages
            if page_cap is not None and minimum > page_cap:
                raise TrapResourceLimit(
                    f"declared memory minimum {minimum} pages exceeds "
                    f"the {page_cap}-page execution limit")
            self.memory = bytearray(minimum * PAGE_SIZE)
            self.memory_max_pages = memtype.limits.maximum
        # Globals.
        self.globals: list = []
        for glob in module.globals:
            self.globals.append(self._eval_const_expr(glob.init))
        # Table.  Both the declared minimum and element-driven growth
        # are metered: a single element segment at a huge offset would
        # otherwise allocate gigabytes of None slots.
        self.table: list[int | None] = []
        table_cap = self.limits.max_table_entries
        if module.tables:
            minimum = module.tables[0].limits.minimum
            if table_cap is not None and minimum > table_cap:
                raise TrapResourceLimit(
                    f"declared table minimum {minimum} exceeds the "
                    f"{table_cap}-entry execution limit")
            self.table = [None] * minimum
        for elem in module.elements:
            offset = self._eval_const_expr(elem.offset)
            end = offset + len(elem.func_indices)
            if offset < 0 or (table_cap is not None and end > table_cap):
                raise TrapResourceLimit(
                    f"element segment [{offset}, {end}) exceeds the "
                    f"{table_cap}-entry execution limit")
            if end > len(self.table):
                self.table.extend([None] * (end - len(self.table)))
            for i, func_index in enumerate(elem.func_indices):
                self.table[offset + i] = func_index
        # Data segments.
        for segment in module.data_segments:
            offset = self._eval_const_expr(segment.offset)
            end = offset + len(segment.data)
            if end > len(self.memory):
                raise TrapMemoryOutOfBounds("data segment out of bounds")
            self.memory[offset:end] = segment.data
        self._jump_tables: dict[int, dict[int, tuple[int, int | None]]] = {}
        if module.start is not None:
            self.invoke_index(module.start, [])

    # -- public API ------------------------------------------------------
    def invoke(self, export_name: str, args: Sequence = ()) -> list:
        """Call an exported function by name."""
        index = self.module.export_index(export_name, "func")
        if index is None:
            raise KeyError(f"no exported function named {export_name!r}")
        return self.invoke_index(index, list(args))

    def invoke_index(self, func_index: int, args: list) -> list:
        """Call a function by index (import-space indexing)."""
        if self._call_depth == 0 and self.limits.deadline_s is not None:
            self._deadline = _time.monotonic() + self.limits.deadline_s
        if self.module.is_imported_function(func_index):
            host = self._imported[func_index]
            results = host.impl(self, list(args))
            return list(results) if results else []
        func = self.module.local_function(func_index)
        return self._call_local(func, args)

    def reset_fuel(self, fuel: int | None = None) -> None:
        self.fuel = fuel if fuel is not None else self.limits.fuel

    # -- memory accessors (used by host functions) -------------------------
    def mem_read(self, addr: int, length: int) -> bytes:
        if addr < 0 or addr + length > len(self.memory):
            raise TrapMemoryOutOfBounds(f"read [{addr}, {addr + length})")
        return bytes(self.memory[addr:addr + length])

    def mem_write(self, addr: int, data: bytes) -> None:
        if addr < 0 or addr + len(data) > len(self.memory):
            raise TrapMemoryOutOfBounds(f"write [{addr}, {addr + len(data)})")
        self.memory[addr:addr + len(data)] = data

    def mem_read_cstr(self, addr: int, max_len: int = 256) -> str:
        """Read a NUL-terminated string (for assertion messages)."""
        out = bytearray()
        while len(out) < max_len and addr < len(self.memory):
            byte = self.memory[addr]
            if byte == 0:
                break
            out.append(byte)
            addr += 1
        return out.decode("utf-8", errors="replace")

    # -- internals -----------------------------------------------------------
    def _eval_const_expr(self, instructions: list[Instr]):
        if len(instructions) != 1:
            raise ValueError("only single-instruction init exprs supported")
        instr = instructions[0]
        if instr.op == "i32.const":
            return instr.args[0] & MASK32
        if instr.op == "i64.const":
            return instr.args[0] & MASK64
        if instr.op in ("f32.const", "f64.const"):
            return instr.args[0]
        raise ValueError(f"unsupported init expr {instr.op}")

    def _call_local(self, func: Function, args: list) -> list:
        self._call_depth += 1
        if self._call_depth > self.limits.call_depth:
            self._call_depth -= 1
            raise TrapStackOverflow(f"call depth {self.limits.call_depth}")
        try:
            func_type = self.module.types[func.type_index]
            locals_list = list(args)
            for valtype in func.locals:
                locals_list.append(0.0 if valtype.is_float else 0)
            code = None
            if self._translated_for is not None:
                code = self._translated_for(self.module, func)
            if code is not None:
                result = code.run(self, locals_list)
            else:
                result = self._execute(func, locals_list)
            arity = len(func_type.results)
            return result[-arity:] if arity else []
        finally:
            self._call_depth -= 1

    def _jump_table_for(self, func: Function) -> dict[int, tuple[int, int | None]]:
        key = id(func)
        table = self._jump_tables.get(key)
        if table is None:
            table = _build_jump_table(func.body)
            self._jump_tables[key] = table
        return table

    def _execute(self, func: Function, locals_list: list) -> list:
        body = func.body
        jumps = self._jump_table_for(func)
        stack: list = []
        control: list[_ControlEntry] = []
        pc = 0
        body_len = len(body)
        while pc < body_len:
            if self.fuel <= 0:
                raise TrapOutOfFuel("instruction budget exhausted")
            self.fuel -= 1
            if self._deadline is not None and (self.fuel & 2047) == 0 \
                    and _time.monotonic() > self._deadline:
                raise TrapDeadline(
                    f"wall-clock deadline of {self.limits.deadline_s}s "
                    "expired")
            instr = body[pc]
            op = instr.op
            # -- control flow ---------------------------------------------
            if op in ("block", "loop", "if"):
                arity = 0 if instr.args[0] is None else 1
                end_pc, else_pc = jumps[pc]
                if op == "if":
                    cond = stack.pop()
                    if cond:
                        control.append(_ControlEntry(
                            "if", end_pc, arity, len(stack)))
                    elif else_pc is not None:
                        control.append(_ControlEntry(
                            "if", end_pc, arity, len(stack)))
                        pc = else_pc
                    else:
                        pc = end_pc
                elif op == "block":
                    control.append(_ControlEntry(
                        "block", end_pc, arity, len(stack)))
                else:  # loop: br target is the loop head, arity 0 on branch
                    control.append(_ControlEntry(
                        "loop", pc, arity, len(stack)))
                pc += 1
                continue
            if op == "else":
                # Reached after the then-arm: jump past the end.
                entry = control.pop()
                pc = entry.target + 1
                continue
            if op == "end":
                if control:
                    control.pop()
                pc += 1
                continue
            if op in ("br", "br_if", "br_table"):
                if op == "br_if":
                    cond = stack.pop()
                    if not cond:
                        pc += 1
                        continue
                    depth = instr.args[0]
                elif op == "br_table":
                    labels, default = instr.args
                    index = stack.pop()
                    depth = labels[index] if index < len(labels) else default
                else:
                    depth = instr.args[0]
                pc = self._branch(stack, control, depth)
                continue
            if op == "return":
                return stack
            if op == "unreachable":
                raise TrapUnreachable("unreachable executed")
            if op == "nop":
                pc += 1
                continue
            if op == "call":
                results = self.invoke_index(instr.args[0],
                                            self._pop_args(stack, instr.args[0]))
                stack.extend(results)
                pc += 1
                continue
            if op == "call_indirect":
                type_index = instr.args[0]
                table_slot = stack.pop()
                if table_slot >= len(self.table) or self.table[table_slot] is None:
                    raise TrapIndirectCall(f"bad table slot {table_slot}")
                func_index = self.table[table_slot]
                actual = self.module.function_type(func_index)
                expected = self.module.types[type_index]
                if actual != expected:
                    raise TrapIndirectCall("indirect call type mismatch")
                results = self.invoke_index(func_index,
                                            self._pop_args(stack, func_index))
                stack.extend(results)
                pc += 1
                continue
            # -- everything else is straight-line -----------------------------
            self._step_simple(instr, stack, locals_list)
            pc += 1
        return stack

    def _pop_args(self, stack: list, func_index: int) -> list:
        count = len(self.module.function_type(func_index).params)
        if count == 0:
            return []
        args = stack[-count:]
        del stack[-count:]
        return args

    def _branch(self, stack: list, control: list[_ControlEntry],
                depth: int) -> int:
        """Execute a br of the given label depth; returns the new pc."""
        if depth >= len(control):
            # Branch targeting the function body label: acts as return.
            # The caller extracts the result arity from the stack top.
            return 1 << 30
        entry = control[len(control) - 1 - depth]
        carried = []
        if entry.kind != "loop" and entry.arity:
            carried = stack[-entry.arity:]
        del stack[entry.stack_height:]
        stack.extend(carried)
        # Pop labels up to and including the target (loop keeps its label).
        for _ in range(depth):
            control.pop()
        if entry.kind == "loop":
            return entry.target + 1  # loop head (re-enter body)
        control.pop()
        return entry.target + 1  # just past the matching end

    # -- simple (non-control) instructions -----------------------------------
    def _step_simple(self, instr: Instr, stack: list, locals_list: list) -> None:
        op = instr.op
        handler = _SIMPLE_OPS.get(op)
        if handler is not None:
            handler(self, instr, stack, locals_list)
            return
        raise NotImplementedError(f"opcode {op} not implemented")

    # -- memory load/store helpers ----------------------------------------
    def _load_bytes(self, instr: Instr, stack: list) -> bytes:
        align, offset = instr.args
        base = stack.pop()
        addr = base + offset
        size = memory_access_size(instr.op)
        if addr + size > len(self.memory) or addr < 0:
            raise TrapMemoryOutOfBounds(f"{instr.op} at {addr}")
        return bytes(self.memory[addr:addr + size])

    def _store_bytes(self, instr: Instr, stack: list, data: bytes) -> None:
        align, offset = instr.args
        base = stack.pop()
        addr = base + offset
        if addr + len(data) > len(self.memory) or addr < 0:
            raise TrapMemoryOutOfBounds(f"{instr.op} at {addr}")
        self.memory[addr:addr + len(data)] = data


class InstanceTemplate:
    """Reusable instantiation state for repeated runs of one module.

    ``Instance.__init__`` re-resolves imports, re-allocates memory, and
    re-applies data and element segments on every instantiation, but a
    scan campaign applies the same contract thousands of times with the
    same host imports and limits.  The template instantiates once,
    snapshots the post-init memory/globals/table images, and
    ``fresh()`` rewinds the single cached instance in place.

    Not valid for modules with a ``start`` function: start must observe
    fresh state once per instantiation, so callers re-instantiate those
    the ordinary way.
    """

    __slots__ = ("instance", "_memory_image", "_globals_image",
                 "_table_image")

    def __init__(self, module: Module,
                 host_imports: dict[tuple[str, str], HostFunc] | None = None,
                 limits: ExecutionLimits | None = None):
        if module.start is not None:
            raise ValueError("modules with a start function cannot be "
                             "templated")
        self.instance = Instance(module, host_imports, limits)
        self._memory_image = bytes(self.instance.memory)
        self._globals_image = list(self.instance.globals)
        self._table_image = list(self.instance.table)

    def fresh(self) -> Instance:
        """Rewind the cached instance to its post-instantiation state."""
        inst = self.instance
        inst.fuel = inst.limits.fuel
        inst._call_depth = 0
        inst._deadline = None
        image = self._memory_image
        if len(inst.memory) == len(image):
            inst.memory[:] = image
        else:
            inst.memory = bytearray(image)
        inst.globals[:] = self._globals_image
        inst.table[:] = self._table_image
        return inst


# ---------------------------------------------------------------------------
# Simple opcode handlers.  Registered in a dispatch dict for speed.
# ---------------------------------------------------------------------------

_SIMPLE_OPS: dict[str, Callable] = {}


def _op(name: str):
    def register(fn):
        _SIMPLE_OPS[name] = fn
        return fn
    return register


# -- constants and variables -------------------------------------------------

@_op("i32.const")
def _i32_const(inst, instr, stack, locals_list):
    stack.append(instr.args[0] & MASK32)


@_op("i64.const")
def _i64_const(inst, instr, stack, locals_list):
    stack.append(instr.args[0] & MASK64)


@_op("f32.const")
def _f32_const(inst, instr, stack, locals_list):
    stack.append(_f32(instr.args[0]))


@_op("f64.const")
def _f64_const(inst, instr, stack, locals_list):
    stack.append(float(instr.args[0]))


@_op("local.get")
def _local_get(inst, instr, stack, locals_list):
    stack.append(locals_list[instr.args[0]])


@_op("local.set")
def _local_set(inst, instr, stack, locals_list):
    locals_list[instr.args[0]] = stack.pop()


@_op("local.tee")
def _local_tee(inst, instr, stack, locals_list):
    locals_list[instr.args[0]] = stack[-1]


@_op("global.get")
def _global_get(inst, instr, stack, locals_list):
    stack.append(inst.globals[instr.args[0]])


@_op("global.set")
def _global_set(inst, instr, stack, locals_list):
    inst.globals[instr.args[0]] = stack.pop()


@_op("drop")
def _drop(inst, instr, stack, locals_list):
    stack.pop()


@_op("select")
def _select(inst, instr, stack, locals_list):
    cond = stack.pop()
    second = stack.pop()
    first = stack.pop()
    stack.append(first if cond else second)


# -- memory -------------------------------------------------------------------

@_op("memory.size")
def _memory_size(inst, instr, stack, locals_list):
    stack.append(len(inst.memory) // PAGE_SIZE)


@_op("memory.grow")
def _memory_grow(inst, instr, stack, locals_list):
    delta = stack.pop() & MASK32
    old_pages = len(inst.memory) // PAGE_SIZE
    new_pages = old_pages + delta
    # Effective cap: the declared maximum intersected with the
    # execution limit, so a module that declares no maximum (or a
    # hostile 4 GiB one) still cannot exhaust host RAM.  Per Wasm
    # semantics a failed grow returns -1, it does not trap.
    cap = inst.memory_max_pages
    hard = inst.limits.max_memory_pages
    if hard is not None:
        cap = hard if cap is None else min(cap, hard)
    if (cap is not None and new_pages > cap) or new_pages > 65_536:
        stack.append(MASK32)  # -1
        return
    inst.memory.extend(bytes(delta * PAGE_SIZE))
    stack.append(old_pages)


def _register_loads():
    def make_load(op: str):
        signed = op.endswith("_s")
        is_float = op.startswith("f")
        target_bits = 64 if op.startswith("i64") or op.startswith("f64") else 32
        size = memory_access_size(op)

        def load(inst, instr, stack, locals_list):
            data = inst._load_bytes(instr, stack)
            if is_float:
                fmt = "<f" if size == 4 else "<d"
                stack.append(struct.unpack(fmt, data)[0])
                return
            value = int.from_bytes(data, "little")
            if signed:
                value = _signed(value, size * 8)
                value &= MASK64 if target_bits == 64 else MASK32
            stack.append(value)

        return load

    def make_store(op: str):
        is_float = op.startswith("f")
        size = memory_access_size(op)

        def store(inst, instr, stack, locals_list):
            value = stack.pop()
            if is_float:
                fmt = "<f" if size == 4 else "<d"
                data = struct.pack(fmt, _f32(value) if size == 4 else value)
            else:
                data = (value & ((1 << (size * 8)) - 1)).to_bytes(size, "little")
            inst._store_bytes(instr, stack, data)

        return store

    from .opcodes import MEMORY_INSTRUCTIONS
    for op in MEMORY_INSTRUCTIONS:
        if ".load" in op:
            _SIMPLE_OPS[op] = make_load(op)
        else:
            _SIMPLE_OPS[op] = make_store(op)


_register_loads()


# -- integer arithmetic ---------------------------------------------------------

def _register_int_ops():
    def binop(bits: int, fn):
        m = MASK64 if bits == 64 else MASK32

        def handler(inst, instr, stack, locals_list):
            rhs = stack.pop()
            lhs = stack.pop()
            stack.append(fn(lhs, rhs, bits) & m)

        return handler

    def unop(bits: int, fn):
        m = MASK64 if bits == 64 else MASK32

        def handler(inst, instr, stack, locals_list):
            stack.append(fn(stack.pop(), bits) & m)

        return handler

    def relop(bits: int, fn):
        def handler(inst, instr, stack, locals_list):
            rhs = stack.pop()
            lhs = stack.pop()
            stack.append(1 if fn(lhs, rhs, bits) else 0)

        return handler

    def div_s(a, b, bits):
        if b == 0:
            raise TrapIntegerDivide("signed division by zero")
        sa, sb = _signed(a, bits), _signed(b, bits)
        if sa == -(1 << (bits - 1)) and sb == -1:
            raise TrapIntegerOverflow("signed division overflow")
        q = abs(sa) // abs(sb)
        return -q if (sa < 0) != (sb < 0) else q

    def rem_s(a, b, bits):
        if b == 0:
            raise TrapIntegerDivide("signed remainder by zero")
        sa, sb = _signed(a, bits), _signed(b, bits)
        r = abs(sa) % abs(sb)
        return -r if sa < 0 else r

    def div_u(a, b, bits):
        if b == 0:
            raise TrapIntegerDivide("unsigned division by zero")
        return a // b

    def rem_u(a, b, bits):
        if b == 0:
            raise TrapIntegerDivide("unsigned remainder by zero")
        return a % b

    def rotl(a, b, bits):
        b %= bits
        return (a << b) | (a >> (bits - b)) if b else a

    def rotr(a, b, bits):
        b %= bits
        return (a >> b) | (a << (bits - b)) if b else a

    def clz(a, bits):
        return bits - a.bit_length()

    def ctz(a, bits):
        if a == 0:
            return bits
        return (a & -a).bit_length() - 1

    int_binops = {
        "add": lambda a, b, bits: a + b,
        "sub": lambda a, b, bits: a - b,
        "mul": lambda a, b, bits: a * b,
        "div_s": div_s,
        "div_u": div_u,
        "rem_s": rem_s,
        "rem_u": rem_u,
        "and": lambda a, b, bits: a & b,
        "or": lambda a, b, bits: a | b,
        "xor": lambda a, b, bits: a ^ b,
        "shl": lambda a, b, bits: a << (b % bits),
        "shr_u": lambda a, b, bits: a >> (b % bits),
        "shr_s": lambda a, b, bits: _signed(a, bits) >> (b % bits),
        "rotl": rotl,
        "rotr": rotr,
    }
    int_unops = {
        "clz": clz,
        "ctz": ctz,
        "popcnt": lambda a, bits: bin(a).count("1"),
    }
    int_relops = {
        "eq": lambda a, b, bits: a == b,
        "ne": lambda a, b, bits: a != b,
        "lt_u": lambda a, b, bits: a < b,
        "gt_u": lambda a, b, bits: a > b,
        "le_u": lambda a, b, bits: a <= b,
        "ge_u": lambda a, b, bits: a >= b,
        "lt_s": lambda a, b, bits: _signed(a, bits) < _signed(b, bits),
        "gt_s": lambda a, b, bits: _signed(a, bits) > _signed(b, bits),
        "le_s": lambda a, b, bits: _signed(a, bits) <= _signed(b, bits),
        "ge_s": lambda a, b, bits: _signed(a, bits) >= _signed(b, bits),
    }
    for prefix, bits in (("i32", 32), ("i64", 64)):
        for name, fn in int_binops.items():
            _SIMPLE_OPS[f"{prefix}.{name}"] = binop(bits, fn)
        for name, fn in int_unops.items():
            _SIMPLE_OPS[f"{prefix}.{name}"] = unop(bits, fn)
        for name, fn in int_relops.items():
            _SIMPLE_OPS[f"{prefix}.{name}"] = relop(bits, fn)
        _SIMPLE_OPS[f"{prefix}.eqz"] = (
            lambda inst, instr, stack, locals_list:
            stack.append(1 if stack.pop() == 0 else 0))


_register_int_ops()


# -- float arithmetic -------------------------------------------------------------

def _register_float_ops():
    def f32_wrap(fn):
        def handler(inst, instr, stack, locals_list):
            stack.append(_f32(fn(stack)))
        return handler

    def f64_wrap(fn):
        def handler(inst, instr, stack, locals_list):
            stack.append(float(fn(stack)))
        return handler

    def pop2(stack):
        rhs = stack.pop()
        lhs = stack.pop()
        return lhs, rhs

    float_binops = {
        "add": lambda s: (lambda a, b: a + b)(*pop2(s)),
        "sub": lambda s: (lambda a, b: a - b)(*pop2(s)),
        "mul": lambda s: (lambda a, b: a * b)(*pop2(s)),
        "div": lambda s: _fdiv(*pop2(s)),
        "min": lambda s: _fmin(*pop2(s)),
        "max": lambda s: _fmax(*pop2(s)),
        "copysign": lambda s: math.copysign(*pop2(s)),
    }
    float_unops = {
        "abs": lambda s: abs(s.pop()),
        "neg": lambda s: -s.pop(),
        "ceil": lambda s: float(math.ceil(s.pop())),
        "floor": lambda s: float(math.floor(s.pop())),
        "trunc": lambda s: float(math.trunc(s.pop())),
        "nearest": lambda s: _nearest(s.pop()),
        "sqrt": lambda s: math.sqrt(s.pop()),
    }
    float_relops = {
        "eq": lambda a, b: a == b,
        "ne": lambda a, b: a != b,
        "lt": lambda a, b: a < b,
        "gt": lambda a, b: a > b,
        "le": lambda a, b: a <= b,
        "ge": lambda a, b: a >= b,
    }
    for prefix, wrap in (("f32", f32_wrap), ("f64", f64_wrap)):
        for name, fn in float_binops.items():
            _SIMPLE_OPS[f"{prefix}.{name}"] = wrap(fn)
        for name, fn in float_unops.items():
            _SIMPLE_OPS[f"{prefix}.{name}"] = wrap(fn)
        for name, fn in float_relops.items():
            def make_rel(f):
                def handler(inst, instr, stack, locals_list):
                    rhs = stack.pop()
                    lhs = stack.pop()
                    stack.append(1 if f(lhs, rhs) else 0)
                return handler
            _SIMPLE_OPS[f"{prefix}.{name}"] = make_rel(fn)


def _fdiv(a: float, b: float) -> float:
    if b == 0.0:
        if a == 0.0 or math.isnan(a):
            return math.nan
        return math.copysign(math.inf, a) * math.copysign(1.0, b)
    return a / b


def _fmin(a: float, b: float) -> float:
    if math.isnan(a) or math.isnan(b):
        return math.nan
    return min(a, b)


def _fmax(a: float, b: float) -> float:
    if math.isnan(a) or math.isnan(b):
        return math.nan
    return max(a, b)


def _nearest(value: float) -> float:
    """Round-to-nearest, ties to even (Wasm semantics)."""
    floor_v = math.floor(value)
    diff = value - floor_v
    if diff < 0.5:
        return float(floor_v)
    if diff > 0.5:
        return float(floor_v + 1)
    return float(floor_v if floor_v % 2 == 0 else floor_v + 1)


_register_float_ops()


# -- conversions ---------------------------------------------------------------------

def _register_conversions():
    def trunc_to_int(bits: int, signed: bool):
        lo = -(1 << (bits - 1)) if signed else 0
        hi = (1 << (bits - 1)) if signed else (1 << bits)
        m = MASK64 if bits == 64 else MASK32

        def handler(inst, instr, stack, locals_list):
            value = stack.pop()
            if math.isnan(value) or math.isinf(value):
                raise TrapIntegerOverflow(f"trunc of {value}")
            truncated = math.trunc(value)
            if not lo <= truncated < hi:
                raise TrapIntegerOverflow(f"trunc {value} out of range")
            stack.append(truncated & m)

        return handler

    _SIMPLE_OPS["i32.wrap_i64"] = (
        lambda inst, instr, stack, locals_list:
        stack.append(stack.pop() & MASK32))
    for src in ("f32", "f64"):
        for dst, bits in (("i32", 32), ("i64", 64)):
            _SIMPLE_OPS[f"{dst}.trunc_{src}_s"] = trunc_to_int(bits, True)
            _SIMPLE_OPS[f"{dst}.trunc_{src}_u"] = trunc_to_int(bits, False)
    _SIMPLE_OPS["i64.extend_i32_s"] = (
        lambda inst, instr, stack, locals_list:
        stack.append(_signed(stack.pop(), 32) & MASK64))
    _SIMPLE_OPS["i64.extend_i32_u"] = (
        lambda inst, instr, stack, locals_list:
        stack.append(stack.pop() & MASK32))

    def convert(width: int, bits: int, signed: bool):
        def handler(inst, instr, stack, locals_list):
            value = stack.pop()
            if signed:
                value = _signed(value, bits)
            result = float(value)
            stack.append(_f32(result) if width == 32 else result)
        return handler

    for dst, width in (("f32", 32), ("f64", 64)):
        for src, bits in (("i32", 32), ("i64", 64)):
            _SIMPLE_OPS[f"{dst}.convert_{src}_s"] = convert(width, bits, True)
            _SIMPLE_OPS[f"{dst}.convert_{src}_u"] = convert(width, bits, False)
    _SIMPLE_OPS["f32.demote_f64"] = (
        lambda inst, instr, stack, locals_list: stack.append(_f32(stack.pop())))
    _SIMPLE_OPS["f64.promote_f32"] = (
        lambda inst, instr, stack, locals_list: stack.append(float(stack.pop())))
    _SIMPLE_OPS["i32.reinterpret_f32"] = (
        lambda inst, instr, stack, locals_list:
        stack.append(struct.unpack("<I", struct.pack("<f", stack.pop()))[0]))
    _SIMPLE_OPS["i64.reinterpret_f64"] = (
        lambda inst, instr, stack, locals_list:
        stack.append(struct.unpack("<Q", struct.pack("<d", stack.pop()))[0]))
    _SIMPLE_OPS["f32.reinterpret_i32"] = (
        lambda inst, instr, stack, locals_list:
        stack.append(struct.unpack("<f", struct.pack("<I", stack.pop()))[0]))
    _SIMPLE_OPS["f64.reinterpret_i64"] = (
        lambda inst, instr, stack, locals_list:
        stack.append(struct.unpack("<d", struct.pack("<Q", stack.pop()))[0]))


_register_conversions()

"""LEB128 integer codecs used by the Wasm binary format.

This layer is the first line of defence against hostile binaries:
every decode failure raises :class:`ParseError` (a ``ValueError``
subclass carrying the absolute byte offset and, once the parser has
annotated it, the section being decoded) — never a bare exception —
and the spec's encoding-length ceilings (5 bytes for u32/s32, 10 for
s64) are enforced so overlong-padded encodings are rejected instead of
looping.  :meth:`Reader.vec` bounds vector counts by the bytes that
remain, so a crafted count can never demand a multi-gigabyte
pre-allocation in the parser.
"""

from __future__ import annotations

__all__ = ["encode_unsigned", "encode_signed", "decode_unsigned",
           "decode_signed", "ParseError", "Reader"]

# ceil(bits / 7) bytes is the longest valid encoding of an N-bit LEB.
_MAX_BYTES_32 = 5
_MAX_BYTES_64 = 10


class ParseError(ValueError):
    """Raised for malformed Wasm binaries.

    ``offset`` is the absolute byte offset of the defect inside the
    module (when known); ``section`` names the section being decoded
    (annotated by the parser's section loop).  Subclasses ValueError
    so pre-existing ``except ValueError`` call sites keep working.
    """

    def __init__(self, message: str, *, offset: int | None = None,
                 section: str | None = None):
        super().__init__(message)
        self.offset = offset
        self.section = section

    def __str__(self) -> str:
        base = super().__str__()
        context = []
        if self.section is not None:
            context.append(f"section {self.section}")
        if self.offset is not None:
            context.append(f"byte {self.offset}")
        return f"{base} ({', '.join(context)})" if context else base


def encode_unsigned(value: int) -> bytes:
    """Encode a non-negative int as unsigned LEB128."""
    if value < 0:
        raise ValueError("unsigned LEB128 requires a non-negative value")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def encode_signed(value: int) -> bytes:
    """Encode a (possibly negative) int as signed LEB128."""
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        sign = byte & 0x40
        if (value == 0 and not sign) or (value == -1 and sign):
            out.append(byte)
            return bytes(out)
        out.append(byte | 0x80)


def decode_unsigned(data: bytes, offset: int = 0,
                    max_bytes: int = _MAX_BYTES_64) -> tuple[int, int]:
    """Decode unsigned LEB128; returns (value, next offset)."""
    result = 0
    shift = 0
    start = offset
    while True:
        if offset >= len(data):
            raise ParseError("truncated LEB128", offset=offset)
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if offset - start >= max_bytes:
            raise ParseError("LEB128 too long", offset=start)


def decode_signed(data: bytes, offset: int = 0,
                  max_bytes: int = _MAX_BYTES_64) -> tuple[int, int]:
    """Decode signed LEB128; returns (value, next offset)."""
    result = 0
    shift = 0
    start = offset
    while True:
        if offset >= len(data):
            raise ParseError("truncated LEB128", offset=offset)
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        shift += 7
        if not byte & 0x80:
            if byte & 0x40:
                result -= 1 << shift
            return result, offset
        if offset - start >= max_bytes:
            raise ParseError("LEB128 too long", offset=start)


class Reader:
    """A cursor over bytes with LEB128 helpers for the parser.

    ``base`` is the absolute offset of ``data[0]`` inside the whole
    module, so errors raised while decoding a section payload report
    module-absolute byte offsets.
    """

    __slots__ = ("data", "pos", "base")

    def __init__(self, data: bytes, pos: int = 0, base: int = 0):
        self.data = data
        self.pos = pos
        self.base = base

    def eof(self) -> bool:
        return self.pos >= len(self.data)

    def _fail(self, message: str) -> "ParseError":
        return ParseError(message, offset=self.base + self.pos)

    def byte(self) -> int:
        if self.pos >= len(self.data):
            raise self._fail("unexpected end of input")
        value = self.data[self.pos]
        self.pos += 1
        return value

    def take(self, count: int) -> bytes:
        if count < 0 or self.pos + count > len(self.data):
            raise self._fail("unexpected end of input")
        chunk = self.data[self.pos:self.pos + count]
        self.pos += count
        return chunk

    def u32(self) -> int:
        start = self.base + self.pos
        value, self.pos = decode_unsigned(self.data, self.pos,
                                          max_bytes=_MAX_BYTES_32)
        if value >= 1 << 32:
            raise ParseError("u32 out of range", offset=start)
        return value

    def s32(self) -> int:
        start = self.base + self.pos
        value, self.pos = decode_signed(self.data, self.pos,
                                        max_bytes=_MAX_BYTES_32)
        if not -(1 << 31) <= value < (1 << 32):
            raise ParseError("s32 out of range", offset=start)
        return value

    def s64(self) -> int:
        start = self.base + self.pos
        value, self.pos = decode_signed(self.data, self.pos,
                                        max_bytes=_MAX_BYTES_64)
        if not -(1 << 63) <= value < (1 << 64):
            raise ParseError("s64 out of range", offset=start)
        return value

    def vec(self, what: str = "vector") -> int:
        """Decode a vector count, bounded by the bytes that remain.

        Every vector element occupies at least one byte, so a count
        exceeding the remaining payload is provably malformed — this
        rejects 4-billion-element counts before any list is built.
        """
        start = self.base + self.pos
        count = self.u32()
        remaining = len(self.data) - self.pos
        if count > remaining:
            raise ParseError(
                f"{what} count {count} exceeds the {remaining} bytes "
                "remaining in its payload", offset=start)
        return count

    def name(self) -> str:
        length = self.u32()
        start = self.base + self.pos
        try:
            return self.take(length).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ParseError(f"invalid UTF-8 name: {exc.reason}",
                             offset=start) from None

"""LEB128 integer codecs used by the Wasm binary format."""

from __future__ import annotations

__all__ = ["encode_unsigned", "encode_signed", "decode_unsigned",
           "decode_signed", "Reader"]


def encode_unsigned(value: int) -> bytes:
    """Encode a non-negative int as unsigned LEB128."""
    if value < 0:
        raise ValueError("unsigned LEB128 requires a non-negative value")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def encode_signed(value: int) -> bytes:
    """Encode a (possibly negative) int as signed LEB128."""
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        sign = byte & 0x40
        if (value == 0 and not sign) or (value == -1 and sign):
            out.append(byte)
            return bytes(out)
        out.append(byte | 0x80)


def decode_unsigned(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode unsigned LEB128; returns (value, next offset)."""
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise ValueError("truncated LEB128")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 70:
            raise ValueError("LEB128 too long")


def decode_signed(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode signed LEB128; returns (value, next offset)."""
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise ValueError("truncated LEB128")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        shift += 7
        if not byte & 0x80:
            if byte & 0x40:
                result -= 1 << shift
            return result, offset
        if shift > 70:
            raise ValueError("LEB128 too long")


class Reader:
    """A cursor over bytes with LEB128 helpers for the parser."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes, pos: int = 0):
        self.data = data
        self.pos = pos

    def eof(self) -> bool:
        return self.pos >= len(self.data)

    def byte(self) -> int:
        if self.pos >= len(self.data):
            raise ValueError("unexpected end of input")
        value = self.data[self.pos]
        self.pos += 1
        return value

    def take(self, count: int) -> bytes:
        if self.pos + count > len(self.data):
            raise ValueError("unexpected end of input")
        chunk = self.data[self.pos:self.pos + count]
        self.pos += count
        return chunk

    def u32(self) -> int:
        value, self.pos = decode_unsigned(self.data, self.pos)
        if value >= 1 << 32:
            raise ValueError("u32 out of range")
        return value

    def s32(self) -> int:
        value, self.pos = decode_signed(self.data, self.pos)
        if not -(1 << 31) <= value < (1 << 32):
            raise ValueError("s32 out of range")
        return value

    def s64(self) -> int:
        value, self.pos = decode_signed(self.data, self.pos)
        if not -(1 << 63) <= value < (1 << 64):
            raise ValueError("s64 out of range")
        return value

    def name(self) -> str:
        length = self.u32()
        return self.take(length).decode("utf-8")

"""The in-memory model of a WebAssembly module.

Function bodies are flat instruction lists (the binary layout), with
``block``/``loop``/``if``/``else``/``end`` markers kept inline; the
interpreter and instrumenter build side tables over them as needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .opcodes import Instr
from .types import FuncType, GlobalType, Limits, MemoryType, TableType, ValType

__all__ = ["Module", "Import", "Export", "Function", "Global", "Element",
           "DataSegment", "PAGE_SIZE"]

PAGE_SIZE = 65536


@dataclass
class Import:
    """An import entry.  ``kind`` in {"func", "table", "memory", "global"};
    ``desc`` is a type index (func) or a *Type dataclass."""

    module: str
    name: str
    kind: str
    desc: object


@dataclass
class Export:
    name: str
    kind: str
    index: int


@dataclass
class Function:
    """A locally defined function: its type index, extra local variable
    declarations, and the body instruction list (without trailing end)."""

    type_index: int
    locals: list[ValType] = field(default_factory=list)
    body: list[Instr] = field(default_factory=list)


@dataclass
class Global:
    type: GlobalType
    init: list[Instr] = field(default_factory=list)


@dataclass
class Element:
    """An active element segment populating the funcref table."""

    table_index: int
    offset: list[Instr]
    func_indices: list[int]


@dataclass
class DataSegment:
    memory_index: int
    offset: list[Instr]
    data: bytes


@dataclass
class Module:
    types: list[FuncType] = field(default_factory=list)
    imports: list[Import] = field(default_factory=list)
    functions: list[Function] = field(default_factory=list)
    tables: list[TableType] = field(default_factory=list)
    memories: list[MemoryType] = field(default_factory=list)
    globals: list[Global] = field(default_factory=list)
    exports: list[Export] = field(default_factory=list)
    start: int | None = None
    elements: list[Element] = field(default_factory=list)
    data_segments: list[DataSegment] = field(default_factory=list)

    # -- index-space helpers (imports precede local definitions) ---------
    # The function-index space is consulted on every ``call`` the
    # interpreter executes, so the import scan is memoised.  The memo
    # is keyed on ``len(self.imports)``: the builders only ever append
    # imports while a module is under construction, so a stale entry
    # is invalidated by the very mutation that would make it wrong.
    def imported_functions(self) -> list[Import]:
        cached = getattr(self, "_imported_funcs_memo", None)
        if cached is not None and cached[0] == len(self.imports):
            return cached[1]
        imported = [imp for imp in self.imports if imp.kind == "func"]
        self._imported_funcs_memo = (len(self.imports), imported)
        return imported

    @property
    def num_imported_functions(self) -> int:
        return len(self.imported_functions())

    def function_type(self, func_index: int) -> FuncType:
        """Resolve a function index (imports first) to its signature."""
        imported = self.imported_functions()
        if func_index < len(imported):
            return self.types[imported[func_index].desc]
        local = self.functions[func_index - len(imported)]
        return self.types[local.type_index]

    def local_function(self, func_index: int) -> Function:
        offset = self.num_imported_functions
        if func_index < offset:
            raise IndexError(f"function {func_index} is imported")
        return self.functions[func_index - offset]

    def is_imported_function(self, func_index: int) -> bool:
        return func_index < self.num_imported_functions

    def add_type(self, func_type: FuncType) -> int:
        """Intern a function type, returning its index."""
        for i, existing in enumerate(self.types):
            if existing == func_type:
                return i
        self.types.append(func_type)
        return len(self.types) - 1

    def export_index(self, name: str, kind: str = "func") -> int | None:
        for export in self.exports:
            if export.name == name and export.kind == kind:
                return export.index
        return None

    def import_function_index(self, module: str, name: str) -> int | None:
        index = 0
        for imp in self.imports:
            if imp.kind != "func":
                continue
            if imp.module == module and imp.name == name:
                return index
            index += 1
        return None

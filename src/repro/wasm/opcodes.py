"""The WebAssembly MVP opcode table.

Maps mnemonics to (opcode byte, immediate kind).  Immediate kinds drive
both the binary codec (:mod:`repro.wasm.encoder` /
:mod:`repro.wasm.parser`) and the instrumenter's operand capture.

The 23 memory instructions the paper calls out (§2.2) are the entries
with the ``memarg`` immediate kind; :func:`memory_access_size` gives the
byte width each one touches, which the symbolic memory model (§3.4.1)
needs to split contents into Z3-style byte arrays.
"""

from __future__ import annotations

__all__ = ["OPCODES", "BY_CODE", "Instr", "memory_access_size",
           "is_load", "is_store", "MEMORY_INSTRUCTIONS"]

# Immediate kinds:
#   none        no immediates
#   block       blocktype byte (0x40 or a valtype code)
#   u32         one unsigned index (locals, globals, functions, labels)
#   br_table    label vector + default label
#   call_ind    type index + reserved table byte
#   memarg      alignment + offset
#   i32 / i64   signed LEB constant
#   f32 / f64   4/8 little-endian bytes
#   memidx      reserved 0x00 byte (memory.size / memory.grow)
OPCODES: dict[str, tuple[int, str]] = {
    # Control
    "unreachable": (0x00, "none"),
    "nop": (0x01, "none"),
    "block": (0x02, "block"),
    "loop": (0x03, "block"),
    "if": (0x04, "block"),
    "else": (0x05, "none"),
    "end": (0x0B, "none"),
    "br": (0x0C, "u32"),
    "br_if": (0x0D, "u32"),
    "br_table": (0x0E, "br_table"),
    "return": (0x0F, "none"),
    "call": (0x10, "u32"),
    "call_indirect": (0x11, "call_ind"),
    # Parametric
    "drop": (0x1A, "none"),
    "select": (0x1B, "none"),
    # Variables
    "local.get": (0x20, "u32"),
    "local.set": (0x21, "u32"),
    "local.tee": (0x22, "u32"),
    "global.get": (0x23, "u32"),
    "global.set": (0x24, "u32"),
    # Memory: loads (14 of the 23 memory instructions)
    "i32.load": (0x28, "memarg"),
    "i64.load": (0x29, "memarg"),
    "f32.load": (0x2A, "memarg"),
    "f64.load": (0x2B, "memarg"),
    "i32.load8_s": (0x2C, "memarg"),
    "i32.load8_u": (0x2D, "memarg"),
    "i32.load16_s": (0x2E, "memarg"),
    "i32.load16_u": (0x2F, "memarg"),
    "i64.load8_s": (0x30, "memarg"),
    "i64.load8_u": (0x31, "memarg"),
    "i64.load16_s": (0x32, "memarg"),
    "i64.load16_u": (0x33, "memarg"),
    "i64.load32_s": (0x34, "memarg"),
    "i64.load32_u": (0x35, "memarg"),
    # Memory: stores (9 of the 23)
    "i32.store": (0x36, "memarg"),
    "i64.store": (0x37, "memarg"),
    "f32.store": (0x38, "memarg"),
    "f64.store": (0x39, "memarg"),
    "i32.store8": (0x3A, "memarg"),
    "i32.store16": (0x3B, "memarg"),
    "i64.store8": (0x3C, "memarg"),
    "i64.store16": (0x3D, "memarg"),
    "i64.store32": (0x3E, "memarg"),
    "memory.size": (0x3F, "memidx"),
    "memory.grow": (0x40, "memidx"),
    # Constants
    "i32.const": (0x41, "i32"),
    "i64.const": (0x42, "i64"),
    "f32.const": (0x43, "f32"),
    "f64.const": (0x44, "f64"),
    # i32 comparisons
    "i32.eqz": (0x45, "none"),
    "i32.eq": (0x46, "none"),
    "i32.ne": (0x47, "none"),
    "i32.lt_s": (0x48, "none"),
    "i32.lt_u": (0x49, "none"),
    "i32.gt_s": (0x4A, "none"),
    "i32.gt_u": (0x4B, "none"),
    "i32.le_s": (0x4C, "none"),
    "i32.le_u": (0x4D, "none"),
    "i32.ge_s": (0x4E, "none"),
    "i32.ge_u": (0x4F, "none"),
    # i64 comparisons
    "i64.eqz": (0x50, "none"),
    "i64.eq": (0x51, "none"),
    "i64.ne": (0x52, "none"),
    "i64.lt_s": (0x53, "none"),
    "i64.lt_u": (0x54, "none"),
    "i64.gt_s": (0x55, "none"),
    "i64.gt_u": (0x56, "none"),
    "i64.le_s": (0x57, "none"),
    "i64.le_u": (0x58, "none"),
    "i64.ge_s": (0x59, "none"),
    "i64.ge_u": (0x5A, "none"),
    # f32 comparisons
    "f32.eq": (0x5B, "none"),
    "f32.ne": (0x5C, "none"),
    "f32.lt": (0x5D, "none"),
    "f32.gt": (0x5E, "none"),
    "f32.le": (0x5F, "none"),
    "f32.ge": (0x60, "none"),
    # f64 comparisons
    "f64.eq": (0x61, "none"),
    "f64.ne": (0x62, "none"),
    "f64.lt": (0x63, "none"),
    "f64.gt": (0x64, "none"),
    "f64.le": (0x65, "none"),
    "f64.ge": (0x66, "none"),
    # i32 arithmetic
    "i32.clz": (0x67, "none"),
    "i32.ctz": (0x68, "none"),
    "i32.popcnt": (0x69, "none"),
    "i32.add": (0x6A, "none"),
    "i32.sub": (0x6B, "none"),
    "i32.mul": (0x6C, "none"),
    "i32.div_s": (0x6D, "none"),
    "i32.div_u": (0x6E, "none"),
    "i32.rem_s": (0x6F, "none"),
    "i32.rem_u": (0x70, "none"),
    "i32.and": (0x71, "none"),
    "i32.or": (0x72, "none"),
    "i32.xor": (0x73, "none"),
    "i32.shl": (0x74, "none"),
    "i32.shr_s": (0x75, "none"),
    "i32.shr_u": (0x76, "none"),
    "i32.rotl": (0x77, "none"),
    "i32.rotr": (0x78, "none"),
    # i64 arithmetic
    "i64.clz": (0x79, "none"),
    "i64.ctz": (0x7A, "none"),
    "i64.popcnt": (0x7B, "none"),
    "i64.add": (0x7C, "none"),
    "i64.sub": (0x7D, "none"),
    "i64.mul": (0x7E, "none"),
    "i64.div_s": (0x7F, "none"),
    "i64.div_u": (0x80, "none"),
    "i64.rem_s": (0x81, "none"),
    "i64.rem_u": (0x82, "none"),
    "i64.and": (0x83, "none"),
    "i64.or": (0x84, "none"),
    "i64.xor": (0x85, "none"),
    "i64.shl": (0x86, "none"),
    "i64.shr_s": (0x87, "none"),
    "i64.shr_u": (0x88, "none"),
    "i64.rotl": (0x89, "none"),
    "i64.rotr": (0x8A, "none"),
    # f32 arithmetic
    "f32.abs": (0x8B, "none"),
    "f32.neg": (0x8C, "none"),
    "f32.ceil": (0x8D, "none"),
    "f32.floor": (0x8E, "none"),
    "f32.trunc": (0x8F, "none"),
    "f32.nearest": (0x90, "none"),
    "f32.sqrt": (0x91, "none"),
    "f32.add": (0x92, "none"),
    "f32.sub": (0x93, "none"),
    "f32.mul": (0x94, "none"),
    "f32.div": (0x95, "none"),
    "f32.min": (0x96, "none"),
    "f32.max": (0x97, "none"),
    "f32.copysign": (0x98, "none"),
    # f64 arithmetic
    "f64.abs": (0x99, "none"),
    "f64.neg": (0x9A, "none"),
    "f64.ceil": (0x9B, "none"),
    "f64.floor": (0x9C, "none"),
    "f64.trunc": (0x9D, "none"),
    "f64.nearest": (0x9E, "none"),
    "f64.sqrt": (0x9F, "none"),
    "f64.add": (0xA0, "none"),
    "f64.sub": (0xA1, "none"),
    "f64.mul": (0xA2, "none"),
    "f64.div": (0xA3, "none"),
    "f64.min": (0xA4, "none"),
    "f64.max": (0xA5, "none"),
    "f64.copysign": (0xA6, "none"),
    # Conversions
    "i32.wrap_i64": (0xA7, "none"),
    "i32.trunc_f32_s": (0xA8, "none"),
    "i32.trunc_f32_u": (0xA9, "none"),
    "i32.trunc_f64_s": (0xAA, "none"),
    "i32.trunc_f64_u": (0xAB, "none"),
    "i64.extend_i32_s": (0xAC, "none"),
    "i64.extend_i32_u": (0xAD, "none"),
    "i64.trunc_f32_s": (0xAE, "none"),
    "i64.trunc_f32_u": (0xAF, "none"),
    "i64.trunc_f64_s": (0xB0, "none"),
    "i64.trunc_f64_u": (0xB1, "none"),
    "f32.convert_i32_s": (0xB2, "none"),
    "f32.convert_i32_u": (0xB3, "none"),
    "f32.convert_i64_s": (0xB4, "none"),
    "f32.convert_i64_u": (0xB5, "none"),
    "f32.demote_f64": (0xB6, "none"),
    "f64.convert_i32_s": (0xB7, "none"),
    "f64.convert_i32_u": (0xB8, "none"),
    "f64.convert_i64_s": (0xB9, "none"),
    "f64.convert_i64_u": (0xBA, "none"),
    "f64.promote_f32": (0xBB, "none"),
    "i32.reinterpret_f32": (0xBC, "none"),
    "i64.reinterpret_f64": (0xBD, "none"),
    "f32.reinterpret_i32": (0xBE, "none"),
    "f64.reinterpret_i64": (0xBF, "none"),
}

BY_CODE: dict[int, str] = {code: name for name, (code, _) in OPCODES.items()}

MEMORY_INSTRUCTIONS = tuple(
    name for name, (_, kind) in OPCODES.items() if kind == "memarg")
assert len(MEMORY_INSTRUCTIONS) == 23, "the paper's 23 memory instructions"


class Instr:
    """One Wasm instruction: mnemonic + decoded immediates.

    Immediates by kind:
      block      args = (blocktype,)   blocktype: None or a ValType name
      u32        args = (index,)
      br_table   args = (labels tuple, default)
      call_ind   args = (type_index,)
      memarg     args = (align, offset)
      i32/i64    args = (value,)       signed int as written
      f32/f64    args = (value,)       Python float
    """

    __slots__ = ("op", "args")

    def __init__(self, op: str, *args):
        if op not in OPCODES:
            raise ValueError(f"unknown opcode mnemonic {op!r}")
        self.op = op
        self.args = args

    def __repr__(self) -> str:
        if not self.args:
            return self.op
        return f"{self.op} {' '.join(str(a) for a in self.args)}"

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Instr) and other.op == self.op
                and other.args == self.args)

    def __hash__(self) -> int:
        return hash((self.op, self.args))

    @property
    def immediate_kind(self) -> str:
        return OPCODES[self.op][1]


def memory_access_size(op: str) -> int:
    """Bytes touched by a memory instruction (the load/store *size*)."""
    if op not in MEMORY_INSTRUCTIONS:
        raise ValueError(f"{op} is not a memory instruction")
    head, _, tail = op.partition(".")
    kind = tail  # e.g. "load8_u", "store16", "load"
    for marker, size in (("8", 1), ("16", 2), ("32", 4)):
        if kind.startswith("load" + marker) or kind.startswith("store" + marker):
            return size
    # Plain load/store: full width of the value type.
    return 8 if head in ("i64", "f64") else 4


def is_load(op: str) -> bool:
    return op in MEMORY_INSTRUCTIONS and ".load" in op


def is_store(op: str) -> bool:
    return op in MEMORY_INSTRUCTIONS and ".store" in op

"""Decode binary ``.wasm`` into a :class:`~repro.wasm.module.Module`."""

from __future__ import annotations

import struct

from .leb128 import Reader
from .module import (DataSegment, Element, Export, Function, Global, Import,
                     Module)
from .opcodes import BY_CODE, Instr, OPCODES
from .types import FuncType, GlobalType, Limits, MemoryType, TableType, ValType

__all__ = ["parse_module", "ParseError"]

MAGIC = b"\x00asm"
VERSION = b"\x01\x00\x00\x00"

_EXPORT_KINDS = {0: "func", 1: "table", 2: "memory", 3: "global"}


class ParseError(ValueError):
    """Raised for malformed Wasm binaries."""


def parse_module(data: bytes) -> Module:
    """Parse a binary Wasm module.

    Custom sections (id 0) are skipped; unknown section ids raise
    :class:`ParseError`.
    """
    if data[:4] != MAGIC:
        raise ParseError("bad magic bytes")
    if data[4:8] != VERSION:
        raise ParseError("unsupported Wasm version")
    reader = Reader(data, 8)
    module = Module()
    func_type_indices: list[int] = []
    last_id = 0
    while not reader.eof():
        section_id = reader.byte()
        size = reader.u32()
        payload = Reader(reader.take(size))
        if section_id != 0:
            if section_id < last_id:
                raise ParseError(f"out-of-order section id {section_id}")
            last_id = section_id
        if section_id == 0:
            continue  # custom section: name + bytes, ignored
        if section_id == 1:
            _parse_types(payload, module)
        elif section_id == 2:
            _parse_imports(payload, module)
        elif section_id == 3:
            func_type_indices = [payload.u32() for _ in range(payload.u32())]
        elif section_id == 4:
            _parse_tables(payload, module)
        elif section_id == 5:
            _parse_memories(payload, module)
        elif section_id == 6:
            _parse_globals(payload, module)
        elif section_id == 7:
            _parse_exports(payload, module)
        elif section_id == 8:
            module.start = payload.u32()
        elif section_id == 9:
            _parse_elements(payload, module)
        elif section_id == 10:
            _parse_code(payload, module, func_type_indices)
        elif section_id == 11:
            _parse_data(payload, module)
        else:
            raise ParseError(f"unknown section id {section_id}")
    if func_type_indices and not module.functions:
        raise ParseError("function section without code section")
    return module


def _parse_types(reader: Reader, module: Module) -> None:
    for _ in range(reader.u32()):
        if reader.byte() != 0x60:
            raise ParseError("expected functype tag 0x60")
        params = tuple(ValType.from_code(reader.byte())
                       for _ in range(reader.u32()))
        results = tuple(ValType.from_code(reader.byte())
                        for _ in range(reader.u32()))
        module.types.append(FuncType(params, results))


def _parse_limits(reader: Reader) -> Limits:
    flag = reader.byte()
    minimum = reader.u32()
    if flag == 0:
        return Limits(minimum)
    if flag == 1:
        return Limits(minimum, reader.u32())
    raise ParseError(f"bad limits flag {flag}")


def _parse_imports(reader: Reader, module: Module) -> None:
    for _ in range(reader.u32()):
        mod_name = reader.name()
        item_name = reader.name()
        kind = reader.byte()
        if kind == 0:
            module.imports.append(Import(mod_name, item_name, "func",
                                         reader.u32()))
        elif kind == 1:
            elem_kind = reader.byte()
            module.imports.append(Import(mod_name, item_name, "table",
                                         TableType(_parse_limits(reader),
                                                   elem_kind)))
        elif kind == 2:
            module.imports.append(Import(mod_name, item_name, "memory",
                                         MemoryType(_parse_limits(reader))))
        elif kind == 3:
            valtype = ValType.from_code(reader.byte())
            mutable = reader.byte() == 1
            module.imports.append(Import(mod_name, item_name, "global",
                                         GlobalType(valtype, mutable)))
        else:
            raise ParseError(f"bad import kind {kind}")


def _parse_tables(reader: Reader, module: Module) -> None:
    for _ in range(reader.u32()):
        elem_kind = reader.byte()
        if elem_kind != 0x70:
            raise ParseError("only funcref tables are supported")
        module.tables.append(TableType(_parse_limits(reader), elem_kind))


def _parse_memories(reader: Reader, module: Module) -> None:
    for _ in range(reader.u32()):
        module.memories.append(MemoryType(_parse_limits(reader)))


def _parse_globals(reader: Reader, module: Module) -> None:
    for _ in range(reader.u32()):
        valtype = ValType.from_code(reader.byte())
        mutable = reader.byte() == 1
        init = _parse_expr(reader)
        module.globals.append(Global(GlobalType(valtype, mutable), init))


def _parse_exports(reader: Reader, module: Module) -> None:
    for _ in range(reader.u32()):
        name = reader.name()
        kind = reader.byte()
        if kind not in _EXPORT_KINDS:
            raise ParseError(f"bad export kind {kind}")
        module.exports.append(Export(name, _EXPORT_KINDS[kind], reader.u32()))


def _parse_elements(reader: Reader, module: Module) -> None:
    for _ in range(reader.u32()):
        table_index = reader.u32()
        offset = _parse_expr(reader)
        funcs = [reader.u32() for _ in range(reader.u32())]
        module.elements.append(Element(table_index, offset, funcs))


def _parse_code(reader: Reader, module: Module,
                func_type_indices: list[int]) -> None:
    count = reader.u32()
    if count != len(func_type_indices):
        raise ParseError("function/code section count mismatch")
    for type_index in func_type_indices:
        size = reader.u32()
        body_reader = Reader(reader.take(size))
        locals_list: list[ValType] = []
        for _ in range(body_reader.u32()):
            run = body_reader.u32()
            valtype = ValType.from_code(body_reader.byte())
            locals_list.extend([valtype] * run)
        body = _parse_expr(body_reader, top_level=True)
        module.functions.append(Function(type_index, locals_list, body))


def _parse_data(reader: Reader, module: Module) -> None:
    for _ in range(reader.u32()):
        memory_index = reader.u32()
        offset = _parse_expr(reader)
        length = reader.u32()
        module.data_segments.append(
            DataSegment(memory_index, offset, reader.take(length)))


def _parse_expr(reader: Reader, top_level: bool = False) -> list[Instr]:
    """Parse instructions up to (and consuming) the matching ``end``.

    ``top_level`` bodies may contain nested blocks; we track depth so
    only the final, matching ``end`` terminates the expression.
    """
    instructions: list[Instr] = []
    depth = 0
    while True:
        instr = _parse_instruction(reader)
        if instr.op in ("block", "loop", "if"):
            depth += 1
        elif instr.op == "end":
            if depth == 0:
                return instructions
            depth -= 1
        instructions.append(instr)


def _parse_instruction(reader: Reader) -> Instr:
    code = reader.byte()
    op = BY_CODE.get(code)
    if op is None:
        raise ParseError(f"unknown opcode 0x{code:02x}")
    kind = OPCODES[op][1]
    if kind == "none":
        return Instr(op)
    if kind == "block":
        blocktype = reader.byte()
        if blocktype == 0x40:
            return Instr(op, None)
        return Instr(op, ValType.from_code(blocktype).name)
    if kind == "u32":
        return Instr(op, reader.u32())
    if kind == "br_table":
        labels = tuple(reader.u32() for _ in range(reader.u32()))
        return Instr(op, labels, reader.u32())
    if kind == "call_ind":
        type_index = reader.u32()
        if reader.byte() != 0:
            raise ParseError("call_indirect reserved byte must be 0")
        return Instr(op, type_index)
    if kind == "memarg":
        return Instr(op, reader.u32(), reader.u32())
    if kind == "i32":
        return Instr(op, reader.s32())
    if kind == "i64":
        return Instr(op, reader.s64())
    if kind == "f32":
        return Instr(op, struct.unpack("<f", reader.take(4))[0])
    if kind == "f64":
        return Instr(op, struct.unpack("<d", reader.take(8))[0])
    if kind == "memidx":
        if reader.byte() != 0:
            raise ParseError("memory index must be 0")
        return Instr(op)
    raise ParseError(f"unhandled immediate kind {kind}")

"""Decode binary ``.wasm`` into a :class:`~repro.wasm.module.Module`.

The parser is written to survive hostile bytes: every defect raises
:class:`ParseError` (re-exported from :mod:`repro.wasm.leb128`)
annotated with the section name and the absolute byte offset, vector
counts are bounded by the bytes remaining in their payload, and local
declarations are capped so a two-byte run count cannot demand a
multi-gigabyte list.  :func:`parse_module` optionally takes an
ingestion *budget* (see :mod:`repro.wasm.hardening`) enforcing
structural count ceilings while parsing, before any large structure is
materialised.
"""

from __future__ import annotations

import struct

from .leb128 import ParseError, Reader
from .module import (DataSegment, Element, Export, Function, Global, Import,
                     Module)
from .opcodes import BY_CODE, Instr, OPCODES
from .types import FuncType, GlobalType, Limits, MemoryType, TableType, ValType

__all__ = ["parse_module", "ParseError"]

MAGIC = b"\x00asm"
VERSION = b"\x01\x00\x00\x00"

_EXPORT_KINDS = {0: "func", 1: "table", 2: "memory", 3: "global"}

_SECTION_NAMES = {0: "custom", 1: "type", 2: "import", 3: "function",
                  4: "table", 5: "memory", 6: "global", 7: "export",
                  8: "start", 9: "element", 10: "code", 11: "data"}

# Hard ceiling on the locals of one function, independent of any
# budget: a crafted (run, valtype) pair is two bytes on the wire but
# expands to ``run`` list entries, so expansion must be capped before
# allocation, not validated after.
MAX_FUNCTION_LOCALS = 1_000_000


def _budget_cap(budget, attr: str, count: int, what: str,
                offset: int) -> None:
    cap = getattr(budget, attr, None) if budget is not None else None
    if cap is not None and count > cap:
        raise ParseError(f"{what} count {count} exceeds budget {cap}",
                         offset=offset)


def parse_module(data: bytes, budget=None) -> Module:
    """Parse a binary Wasm module.

    Custom sections (id 0) are skipped; unknown section ids raise
    :class:`ParseError`.  ``budget`` (duck-typed, normally an
    :class:`repro.wasm.hardening.IngestBudget`) bounds structural
    counts while parsing.
    """
    if bytes(data[:4]) != MAGIC:
        raise ParseError("bad magic bytes", offset=0)
    if bytes(data[4:8]) != VERSION:
        raise ParseError("unsupported Wasm version", offset=4)
    reader = Reader(data, 8)
    module = Module()
    func_type_indices: list[int] = []
    last_id = 0
    while not reader.eof():
        section_offset = reader.pos
        section_id = reader.byte()
        section = _SECTION_NAMES.get(section_id, f"id {section_id}")
        try:
            size = reader.u32()
            payload = Reader(reader.take(size), base=reader.pos - size)
            if section_id != 0:
                if section_id < last_id:
                    raise ParseError(
                        f"out-of-order section id {section_id}",
                        offset=section_offset)
                last_id = section_id
            if section_id == 0:
                continue  # custom section: name + bytes, ignored
            if section_id == 1:
                _parse_types(payload, module, budget)
            elif section_id == 2:
                _parse_imports(payload, module, budget)
            elif section_id == 3:
                count = payload.vec("function")
                _budget_cap(budget, "max_functions", count, "function",
                            payload.base)
                func_type_indices = [payload.u32() for _ in range(count)]
            elif section_id == 4:
                _parse_tables(payload, module)
            elif section_id == 5:
                _parse_memories(payload, module)
            elif section_id == 6:
                _parse_globals(payload, module)
            elif section_id == 7:
                _parse_exports(payload, module, budget)
            elif section_id == 8:
                module.start = payload.u32()
            elif section_id == 9:
                _parse_elements(payload, module, budget)
            elif section_id == 10:
                _parse_code(payload, module, func_type_indices, budget)
            elif section_id == 11:
                _parse_data(payload, module)
            else:
                raise ParseError(f"unknown section id {section_id}",
                                 offset=section_offset)
        except ParseError as exc:
            if exc.section is None:
                exc.section = section
            if exc.offset is None:
                exc.offset = section_offset
            raise
        except ValueError as exc:
            # e.g. ValType.from_code on a bad type byte — lift into a
            # ParseError so the defect carries section context.
            raise ParseError(str(exc), offset=section_offset,
                             section=section) from None
    if func_type_indices and not module.functions:
        raise ParseError("function section without code section")
    return module


def _parse_types(reader: Reader, module: Module, budget=None) -> None:
    count = reader.vec("type")
    _budget_cap(budget, "max_types", count, "type", reader.base)
    for _ in range(count):
        if reader.byte() != 0x60:
            raise ParseError("expected functype tag 0x60",
                             offset=reader.base + reader.pos - 1)
        params = tuple(ValType.from_code(reader.byte())
                       for _ in range(reader.vec("param")))
        results = tuple(ValType.from_code(reader.byte())
                        for _ in range(reader.vec("result")))
        module.types.append(FuncType(params, results))


def _parse_limits(reader: Reader) -> Limits:
    flag = reader.byte()
    minimum = reader.u32()
    if flag == 0:
        return Limits(minimum)
    if flag == 1:
        maximum = reader.u32()
        if maximum < minimum:
            raise ParseError(
                f"limits maximum {maximum} below minimum {minimum}",
                offset=reader.base + reader.pos)
        return Limits(minimum, maximum)
    raise ParseError(f"bad limits flag {flag}",
                     offset=reader.base + reader.pos - 1)


def _parse_imports(reader: Reader, module: Module, budget=None) -> None:
    count = reader.vec("import")
    _budget_cap(budget, "max_imports", count, "import", reader.base)
    for _ in range(count):
        mod_name = reader.name()
        item_name = reader.name()
        kind = reader.byte()
        if kind == 0:
            module.imports.append(Import(mod_name, item_name, "func",
                                         reader.u32()))
        elif kind == 1:
            elem_kind = reader.byte()
            module.imports.append(Import(mod_name, item_name, "table",
                                         TableType(_parse_limits(reader),
                                                   elem_kind)))
        elif kind == 2:
            module.imports.append(Import(mod_name, item_name, "memory",
                                         MemoryType(_parse_limits(reader))))
        elif kind == 3:
            valtype = ValType.from_code(reader.byte())
            mutable = reader.byte() == 1
            module.imports.append(Import(mod_name, item_name, "global",
                                         GlobalType(valtype, mutable)))
        else:
            raise ParseError(f"bad import kind {kind}",
                             offset=reader.base + reader.pos - 1)


def _parse_tables(reader: Reader, module: Module) -> None:
    for _ in range(reader.vec("table")):
        elem_kind = reader.byte()
        if elem_kind != 0x70:
            raise ParseError("only funcref tables are supported",
                             offset=reader.base + reader.pos - 1)
        module.tables.append(TableType(_parse_limits(reader), elem_kind))


def _parse_memories(reader: Reader, module: Module) -> None:
    for _ in range(reader.vec("memory")):
        module.memories.append(MemoryType(_parse_limits(reader)))


def _parse_globals(reader: Reader, module: Module) -> None:
    for _ in range(reader.vec("global")):
        valtype = ValType.from_code(reader.byte())
        mutable = reader.byte() == 1
        init = _parse_expr(reader)
        module.globals.append(Global(GlobalType(valtype, mutable), init))


def _parse_exports(reader: Reader, module: Module, budget=None) -> None:
    count = reader.vec("export")
    _budget_cap(budget, "max_exports", count, "export", reader.base)
    for _ in range(count):
        name = reader.name()
        kind = reader.byte()
        if kind not in _EXPORT_KINDS:
            raise ParseError(f"bad export kind {kind}",
                             offset=reader.base + reader.pos - 1)
        module.exports.append(Export(name, _EXPORT_KINDS[kind], reader.u32()))


def _parse_elements(reader: Reader, module: Module, budget=None) -> None:
    total_funcs = 0
    for _ in range(reader.vec("element")):
        table_index = reader.u32()
        offset = _parse_expr(reader)
        funcs = [reader.u32() for _ in range(reader.vec("element func"))]
        total_funcs += len(funcs)
        _budget_cap(budget, "max_elements", total_funcs, "element func",
                    reader.base)
        module.elements.append(Element(table_index, offset, funcs))


def _parse_code(reader: Reader, module: Module,
                func_type_indices: list[int], budget=None) -> None:
    count = reader.vec("code")
    if count != len(func_type_indices):
        raise ParseError("function/code section count mismatch",
                         offset=reader.base)
    locals_cap = MAX_FUNCTION_LOCALS
    budget_cap = getattr(budget, "max_locals_per_function", None) \
        if budget is not None else None
    if budget_cap is not None:
        locals_cap = min(locals_cap, budget_cap)
    for type_index in func_type_indices:
        size = reader.u32()
        body_base = reader.base + reader.pos
        body_reader = Reader(reader.take(size), base=body_base)
        locals_list: list[ValType] = []
        for _ in range(body_reader.vec("locals")):
            run = body_reader.u32()
            if len(locals_list) + run > locals_cap:
                raise ParseError(
                    f"function declares more than {locals_cap} locals",
                    offset=body_base)
            valtype = ValType.from_code(body_reader.byte())
            locals_list.extend([valtype] * run)
        body = _parse_expr(body_reader, top_level=True)
        module.functions.append(Function(type_index, locals_list, body))


def _parse_data(reader: Reader, module: Module) -> None:
    for _ in range(reader.vec("data")):
        memory_index = reader.u32()
        offset = _parse_expr(reader)
        length = reader.u32()
        module.data_segments.append(
            DataSegment(memory_index, offset, reader.take(length)))


def _parse_expr(reader: Reader, top_level: bool = False) -> list[Instr]:
    """Parse instructions up to (and consuming) the matching ``end``.

    ``top_level`` bodies may contain nested blocks; we track depth so
    only the final, matching ``end`` terminates the expression.
    """
    instructions: list[Instr] = []
    depth = 0
    while True:
        instr = _parse_instruction(reader)
        if instr.op in ("block", "loop", "if"):
            depth += 1
        elif instr.op == "end":
            if depth == 0:
                return instructions
            depth -= 1
        instructions.append(instr)


def _parse_instruction(reader: Reader) -> Instr:
    at = reader.base + reader.pos
    code = reader.byte()
    op = BY_CODE.get(code)
    if op is None:
        raise ParseError(f"unknown opcode 0x{code:02x}", offset=at)
    kind = OPCODES[op][1]
    if kind == "none":
        return Instr(op)
    if kind == "block":
        blocktype = reader.byte()
        if blocktype == 0x40:
            return Instr(op, None)
        try:
            return Instr(op, ValType.from_code(blocktype).name)
        except ValueError:
            raise ParseError(f"bad block type 0x{blocktype:02x}",
                             offset=at) from None
    if kind == "u32":
        return Instr(op, reader.u32())
    if kind == "br_table":
        labels = tuple(reader.u32() for _ in range(reader.vec("br_table")))
        return Instr(op, labels, reader.u32())
    if kind == "call_ind":
        type_index = reader.u32()
        if reader.byte() != 0:
            raise ParseError("call_indirect reserved byte must be 0",
                             offset=at)
        return Instr(op, type_index)
    if kind == "memarg":
        return Instr(op, reader.u32(), reader.u32())
    if kind == "i32":
        return Instr(op, reader.s32())
    if kind == "i64":
        return Instr(op, reader.s64())
    if kind == "f32":
        return Instr(op, struct.unpack("<f", reader.take(4))[0])
    if kind == "f64":
        return Instr(op, struct.unpack("<d", reader.take(8))[0])
    if kind == "memidx":
        if reader.byte() != 0:
            raise ParseError("memory index must be 0", offset=at)
        return Instr(op)
    raise ParseError(f"unhandled immediate kind {kind}", offset=at)

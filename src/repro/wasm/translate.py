"""Direct-threaded translation of Wasm functions to closure chains.

The generic interpreter (:meth:`repro.wasm.interpreter.Instance._execute`)
pays a per-step decode cost for every executed instruction: fetch the
:class:`~repro.wasm.opcodes.Instr`, read ``instr.op``, walk a chain of
string comparisons for the control ops, then a dict lookup plus operand
unpacking for everything else.  None of that work depends on runtime
state — the opcode, its immediates, the jump targets of structured
control and the callee of a direct ``call`` are all fixed once the
function body exists.

:func:`translated_function` therefore compiles a function body ONCE into
a list of per-instruction closures ("direct-threaded" dispatch): each
closure has its operands, jump targets, local slots, memory offsets and
masks pre-bound, executes its instruction against ``(instance, stack,
control, locals)`` and returns the next program counter.  The driver
loop in :class:`TranslatedFunction` then only meters fuel (and the
optional wall-clock deadline) and threads the pc — everything else was
resolved at translation time.

Semantics are bit-for-bit those of the generic interpreter: the control
stack, branch unwinding, trap types and messages, fuel accounting and
the deadline check cadence are all mirrored exactly, and the
differential suite (``tests/wasm/test_translate_differential.py``)
holds both engines to identical traces, traps and verdicts over the
benchmark and hostile corpora.  Rarely executed opcodes (float math,
conversions, ``memory.grow`` ...) reuse the generic handler table with
the instruction pre-bound, so there is exactly one implementation of
their semantics.

Translations are memoised per :class:`~repro.wasm.module.Function` in a
process-wide LRU (the memo keeps the function object alive, so ``id``
reuse cannot alias entries).  A function the translator cannot handle
falls back to the generic interpreter — translation can change speed,
never behaviour.
"""

from __future__ import annotations

import struct
import time as _time
from collections import OrderedDict

from .interpreter import (MASK32, MASK64, _SIMPLE_OPS, _ControlEntry,
                          _build_jump_table, _f32, _signed, Trap,
                          TrapDeadline, TrapIndirectCall, TrapOutOfFuel,
                          TrapUnreachable)
from .module import Function, Module
from .opcodes import memory_access_size

__all__ = ["TranslatedFunction", "translated_function",
           "clear_translation_cache", "translation_cache_info"]

# The sentinel pc the generic interpreter uses for a branch that exits
# the function body; any value >= the body length ends the driver loop.
_RETURN_PC = 1 << 30

# Process-wide translation memo: id(func) -> (func, TranslatedFunction
# | None).  The function reference keeps the object alive so a reused
# id can never resolve to a stale translation; None records a function
# the translator punted on, so the fallback decision is also memoised.
_MAX_TRANSLATIONS = 4096
_TRANSLATIONS: "OrderedDict[int, tuple[Function, TranslatedFunction | None]]" \
    = OrderedDict()


def translated_function(module: Module,
                        func: Function) -> "TranslatedFunction | None":
    """The memoised translation of ``func`` (None: use the generic
    interpreter).  Modules are immutable once they execute, so the
    translation is valid for the function's lifetime."""
    key = id(func)
    hit = _TRANSLATIONS.get(key)
    if hit is not None and hit[0] is func:
        _TRANSLATIONS.move_to_end(key)
        return hit[1]
    try:
        code = _translate(module, func)
    except Exception:
        code = None  # untranslatable: the generic loop is the answer
    _TRANSLATIONS[key] = (func, code)
    while len(_TRANSLATIONS) > _MAX_TRANSLATIONS:
        _TRANSLATIONS.popitem(last=False)
    return code


def clear_translation_cache() -> None:
    _TRANSLATIONS.clear()


def translation_cache_info() -> dict[str, int]:
    entries = len(_TRANSLATIONS)
    translated = sum(1 for _, code in _TRANSLATIONS.values()
                     if code is not None)
    return {"entries": entries, "translated": translated,
            "fallbacks": entries - translated}


class TranslatedFunction:
    """A compiled function body: one closure per instruction plus the
    metering driver loop."""

    __slots__ = ("steps", "size")

    def __init__(self, steps: list):
        self.steps = steps
        self.size = len(steps)

    def run(self, inst, locals_list: list) -> list:
        """Execute the closure chain; mirrors ``Instance._execute``.

        Fuel is checked then decremented before every instruction, and
        the wall-clock deadline is probed on the same ``fuel & 2047``
        cadence as the generic loop, so metering traps fire at exactly
        the same instruction in both engines.
        """
        steps = self.steps
        size = self.size
        stack: list = []
        control: list = []
        pc = 0
        deadline = inst._deadline
        if deadline is None:
            while pc < size:
                fuel = inst.fuel
                if fuel <= 0:
                    raise TrapOutOfFuel("instruction budget exhausted")
                inst.fuel = fuel - 1
                pc = steps[pc](inst, stack, control, locals_list)
        else:
            while pc < size:
                fuel = inst.fuel
                if fuel <= 0:
                    raise TrapOutOfFuel("instruction budget exhausted")
                fuel -= 1
                inst.fuel = fuel
                if (fuel & 2047) == 0 and _time.monotonic() > deadline:
                    raise TrapDeadline(
                        f"wall-clock deadline of {inst.limits.deadline_s}s "
                        "expired")
                pc = steps[pc](inst, stack, control, locals_list)
        return stack


# ---------------------------------------------------------------------------
# Per-instruction closure factories.  Every factory pre-binds the
# instruction's immediates and the next pc; the returned closures all
# share the (inst, stack, control, locals_list) -> next_pc signature.
# ---------------------------------------------------------------------------

def _const(value, next_pc):
    def step(inst, stack, control, locals_list):
        stack.append(value)
        return next_pc
    return step


def _local_get(index, next_pc):
    def step(inst, stack, control, locals_list):
        stack.append(locals_list[index])
        return next_pc
    return step


def _local_set(index, next_pc):
    def step(inst, stack, control, locals_list):
        locals_list[index] = stack.pop()
        return next_pc
    return step


def _local_tee(index, next_pc):
    def step(inst, stack, control, locals_list):
        locals_list[index] = stack[-1]
        return next_pc
    return step


def _global_get(index, next_pc):
    def step(inst, stack, control, locals_list):
        stack.append(inst.globals[index])
        return next_pc
    return step


def _global_set(index, next_pc):
    def step(inst, stack, control, locals_list):
        inst.globals[index] = stack.pop()
        return next_pc
    return step


def _drop(next_pc):
    def step(inst, stack, control, locals_list):
        stack.pop()
        return next_pc
    return step


def _select(next_pc):
    def step(inst, stack, control, locals_list):
        cond = stack.pop()
        second = stack.pop()
        first = stack.pop()
        stack.append(first if cond else second)
        return next_pc
    return step


def _binop(fn, m, next_pc):
    def step(inst, stack, control, locals_list):
        rhs = stack.pop()
        lhs = stack.pop()
        stack.append(fn(lhs, rhs) & m)
        return next_pc
    return step


def _relop(fn, next_pc):
    def step(inst, stack, control, locals_list):
        rhs = stack.pop()
        lhs = stack.pop()
        stack.append(1 if fn(lhs, rhs) else 0)
        return next_pc
    return step


def _eqz(next_pc):
    def step(inst, stack, control, locals_list):
        stack.append(1 if stack.pop() == 0 else 0)
        return next_pc
    return step


def _load_int(offset, size, bits, signed, m, op_name, next_pc):
    from .interpreter import TrapMemoryOutOfBounds

    def step(inst, stack, control, locals_list):
        addr = stack.pop() + offset
        memory = inst.memory
        if addr + size > len(memory) or addr < 0:
            raise TrapMemoryOutOfBounds(f"{op_name} at {addr}")
        value = int.from_bytes(memory[addr:addr + size], "little")
        if signed:
            value = _signed(value, bits) & m
        stack.append(value)
        return next_pc
    return step


def _load_float(offset, size, fmt, op_name, next_pc):
    from .interpreter import TrapMemoryOutOfBounds
    unpack = struct.Struct(fmt).unpack

    def step(inst, stack, control, locals_list):
        addr = stack.pop() + offset
        memory = inst.memory
        if addr + size > len(memory) or addr < 0:
            raise TrapMemoryOutOfBounds(f"{op_name} at {addr}")
        stack.append(unpack(bytes(memory[addr:addr + size]))[0])
        return next_pc
    return step


def _store_int(offset, size, vmask, op_name, next_pc):
    from .interpreter import TrapMemoryOutOfBounds

    def step(inst, stack, control, locals_list):
        value = stack.pop()
        addr = stack.pop() + offset
        memory = inst.memory
        if addr + size > len(memory) or addr < 0:
            raise TrapMemoryOutOfBounds(f"{op_name} at {addr}")
        memory[addr:addr + size] = (value & vmask).to_bytes(size, "little")
        return next_pc
    return step


def _store_float(offset, size, fmt, op_name, next_pc):
    from .interpreter import TrapMemoryOutOfBounds
    pack = struct.Struct(fmt).pack

    def step(inst, stack, control, locals_list):
        value = stack.pop()
        addr = stack.pop() + offset
        memory = inst.memory
        if addr + size > len(memory) or addr < 0:
            raise TrapMemoryOutOfBounds(f"{op_name} at {addr}")
        memory[addr:addr + size] = pack(_f32(value) if size == 4 else value)
        return next_pc
    return step


def _via_handler(handler, instr, next_pc):
    """Fallback for rare opcodes: the generic handler with the
    instruction pre-bound — one shared implementation of the
    semantics, minus the per-step dispatch."""
    def step(inst, stack, control, locals_list):
        handler(inst, instr, stack, locals_list)
        return next_pc
    return step


# -- control flow ----------------------------------------------------------

def _block(end_pc, arity, next_pc):
    def step(inst, stack, control, locals_list):
        control.append(_ControlEntry("block", end_pc, arity, len(stack)))
        return next_pc
    return step


def _loop(head_pc, arity, next_pc):
    def step(inst, stack, control, locals_list):
        control.append(_ControlEntry("loop", head_pc, arity, len(stack)))
        return next_pc
    return step


def _if(end_pc, else_pc, arity, next_pc):
    end_next = end_pc + 1
    else_next = None if else_pc is None else else_pc + 1

    def step(inst, stack, control, locals_list):
        if stack.pop():
            control.append(_ControlEntry("if", end_pc, arity, len(stack)))
            return next_pc
        if else_next is not None:
            control.append(_ControlEntry("if", end_pc, arity, len(stack)))
            return else_next
        return end_next
    return step


def _else(next_pc):
    # Reached after the then-arm: pop the label, jump past the end.
    def step(inst, stack, control, locals_list):
        entry = control.pop()
        return entry.target + 1
    return step


def _end(next_pc):
    def step(inst, stack, control, locals_list):
        if control:
            control.pop()
        return next_pc
    return step


def _unwind(stack, control, depth):
    """Branch unwinding, byte-identical to ``Instance._branch``."""
    if depth >= len(control):
        return _RETURN_PC
    entry = control[len(control) - 1 - depth]
    carried = ()
    if entry.kind != "loop" and entry.arity:
        carried = stack[-entry.arity:]
    del stack[entry.stack_height:]
    stack.extend(carried)
    for _ in range(depth):
        control.pop()
    if entry.kind == "loop":
        return entry.target + 1
    control.pop()
    return entry.target + 1


def _br(depth, next_pc):
    def step(inst, stack, control, locals_list):
        return _unwind(stack, control, depth)
    return step


def _br_if(depth, next_pc):
    def step(inst, stack, control, locals_list):
        if stack.pop():
            return _unwind(stack, control, depth)
        return next_pc
    return step


def _br_table(labels, default, next_pc):
    count = len(labels)

    def step(inst, stack, control, locals_list):
        index = stack.pop()
        depth = labels[index] if index < count else default
        return _unwind(stack, control, depth)
    return step


def _return(next_pc):
    def step(inst, stack, control, locals_list):
        return _RETURN_PC
    return step


def _unreachable(next_pc):
    def step(inst, stack, control, locals_list):
        raise TrapUnreachable("unreachable executed")
    return step


def _nop(next_pc):
    def step(inst, stack, control, locals_list):
        return next_pc
    return step


def _raise_keyerror(pc):
    # An unmatched block/loop/if: the generic interpreter raises
    # KeyError from its jump-table lookup only if the instruction is
    # actually reached, so the translated body must do the same.
    def step(inst, stack, control, locals_list):
        raise KeyError(pc)
    return step


# -- calls -----------------------------------------------------------------

def _call_host(func_index, count, next_pc):
    def step(inst, stack, control, locals_list):
        if count:
            args = stack[-count:]
            del stack[-count:]
        else:
            args = []
        results = inst._imported[func_index].impl(inst, args)
        if results:
            stack.extend(results)
        return next_pc
    return step


def _call_local_fn(func, count, next_pc):
    def step(inst, stack, control, locals_list):
        if count:
            args = stack[-count:]
            del stack[-count:]
        else:
            args = []
        stack.extend(inst._call_local(func, args))
        return next_pc
    return step


def _call_dynamic(func_index, next_pc):
    # The callee index did not resolve at translation time; defer to
    # the runtime lookup so the failure (and its exception) happens at
    # execution, exactly as the generic interpreter would.
    def step(inst, stack, control, locals_list):
        results = inst.invoke_index(func_index,
                                    inst._pop_args(stack, func_index))
        stack.extend(results)
        return next_pc
    return step


def _call_indirect(expected, next_pc):
    def step(inst, stack, control, locals_list):
        table_slot = stack.pop()
        table = inst.table
        if table_slot >= len(table) or table[table_slot] is None:
            raise TrapIndirectCall(f"bad table slot {table_slot}")
        func_index = table[table_slot]
        actual = inst.module.function_type(func_index)
        if actual != expected:
            raise TrapIndirectCall("indirect call type mismatch")
        results = inst.invoke_index(func_index,
                                    inst._pop_args(stack, func_index))
        stack.extend(results)
        return next_pc
    return step


# ---------------------------------------------------------------------------
# Pure operator tables for the hand-specialised hot integer opcodes.
# Trapping ops (div/rem), rotations and bit counts stay on the shared
# generic handlers via _via_handler.
# ---------------------------------------------------------------------------

def _int_tables(bits: int):
    binops = {
        "add": lambda a, b: a + b,
        "sub": lambda a, b: a - b,
        "mul": lambda a, b: a * b,
        "and": lambda a, b: a & b,
        "or": lambda a, b: a | b,
        "xor": lambda a, b: a ^ b,
        "shl": lambda a, b: a << (b % bits),
        "shr_u": lambda a, b: a >> (b % bits),
        "shr_s": lambda a, b: _signed(a, bits) >> (b % bits),
    }
    relops = {
        "eq": lambda a, b: a == b,
        "ne": lambda a, b: a != b,
        "lt_u": lambda a, b: a < b,
        "gt_u": lambda a, b: a > b,
        "le_u": lambda a, b: a <= b,
        "ge_u": lambda a, b: a >= b,
        "lt_s": lambda a, b: _signed(a, bits) < _signed(b, bits),
        "gt_s": lambda a, b: _signed(a, bits) > _signed(b, bits),
        "le_s": lambda a, b: _signed(a, bits) <= _signed(b, bits),
        "ge_s": lambda a, b: _signed(a, bits) >= _signed(b, bits),
    }
    return binops, relops


_I32_BINOPS, _I32_RELOPS = _int_tables(32)
_I64_BINOPS, _I64_RELOPS = _int_tables(64)


# ---------------------------------------------------------------------------
# The translator proper.
# ---------------------------------------------------------------------------

def _translate(module: Module, func: Function) -> TranslatedFunction:
    body = func.body
    jumps = _build_jump_table(body)
    steps: list = []
    for pc, instr in enumerate(body):
        steps.append(_translate_instr(module, jumps, pc, instr))
    return TranslatedFunction(steps)


def _translate_instr(module: Module, jumps, pc: int, instr):
    op = instr.op
    next_pc = pc + 1

    # -- control -----------------------------------------------------------
    if op in ("block", "loop", "if"):
        if pc not in jumps:
            return _raise_keyerror(pc)
        arity = 0 if instr.args[0] is None else 1
        end_pc, else_pc = jumps[pc]
        if op == "block":
            return _block(end_pc, arity, next_pc)
        if op == "loop":
            return _loop(pc, arity, next_pc)
        return _if(end_pc, else_pc, arity, next_pc)
    if op == "else":
        return _else(next_pc)
    if op == "end":
        return _end(next_pc)
    if op == "br":
        return _br(instr.args[0], next_pc)
    if op == "br_if":
        return _br_if(instr.args[0], next_pc)
    if op == "br_table":
        labels, default = instr.args
        return _br_table(tuple(labels), default, next_pc)
    if op == "return":
        return _return(next_pc)
    if op == "unreachable":
        return _unreachable(next_pc)
    if op == "nop":
        return _nop(next_pc)
    if op == "call":
        func_index = instr.args[0]
        try:
            count = len(module.function_type(func_index).params)
            if module.is_imported_function(func_index):
                return _call_host(func_index, count, next_pc)
            return _call_local_fn(module.local_function(func_index),
                                  count, next_pc)
        except Exception:
            return _call_dynamic(func_index, next_pc)
    if op == "call_indirect":
        type_index = instr.args[0]
        try:
            expected = module.types[type_index]
        except Exception:
            expected = None  # mismatch at runtime, like the generic path
        return _call_indirect(expected, next_pc)

    # -- hand-specialised hot opcodes -------------------------------------
    if op == "i32.const":
        return _const(instr.args[0] & MASK32, next_pc)
    if op == "i64.const":
        return _const(instr.args[0] & MASK64, next_pc)
    if op == "f32.const":
        return _const(_f32(instr.args[0]), next_pc)
    if op == "f64.const":
        return _const(float(instr.args[0]), next_pc)
    if op == "local.get":
        return _local_get(instr.args[0], next_pc)
    if op == "local.set":
        return _local_set(instr.args[0], next_pc)
    if op == "local.tee":
        return _local_tee(instr.args[0], next_pc)
    if op == "global.get":
        return _global_get(instr.args[0], next_pc)
    if op == "global.set":
        return _global_set(instr.args[0], next_pc)
    if op == "drop":
        return _drop(next_pc)
    if op == "select":
        return _select(next_pc)
    if op in ("i32.eqz", "i64.eqz"):
        return _eqz(next_pc)
    if op == "i32.wrap_i64":
        return _binop_unary_mask(MASK32, next_pc)
    if op == "i64.extend_i32_u":
        return _binop_unary_mask(MASK32, next_pc)
    if op == "i64.extend_i32_s":
        return _extend_s(next_pc)

    prefix, _, name = op.partition(".")
    if prefix == "i32":
        fn = _I32_BINOPS.get(name)
        if fn is not None:
            return _binop(fn, MASK32, next_pc)
        fn = _I32_RELOPS.get(name)
        if fn is not None:
            return _relop(fn, next_pc)
    elif prefix == "i64":
        fn = _I64_BINOPS.get(name)
        if fn is not None:
            return _binop(fn, MASK64, next_pc)
        fn = _I64_RELOPS.get(name)
        if fn is not None:
            return _relop(fn, next_pc)

    if ".load" in op or ".store" in op:
        translated = _translate_memory(op, instr, next_pc)
        if translated is not None:
            return translated

    # -- everything else: the shared generic handler ----------------------
    handler = _SIMPLE_OPS.get(op)
    if handler is not None:
        return _via_handler(handler, instr, next_pc)

    def step(inst, stack, control, locals_list):  # pragma: no cover
        raise NotImplementedError(f"opcode {op} not implemented")
    return step


def _binop_unary_mask(m, next_pc):
    def step(inst, stack, control, locals_list):
        stack.append(stack.pop() & m)
        return next_pc
    return step


def _extend_s(next_pc):
    def step(inst, stack, control, locals_list):
        stack.append(_signed(stack.pop(), 32) & MASK64)
        return next_pc
    return step


def _translate_memory(op: str, instr, next_pc):
    try:
        size = memory_access_size(op)
    except ValueError:
        return None
    align, offset = instr.args
    is_float = op.startswith("f")
    if ".load" in op:
        if is_float:
            return _load_float(offset, size, "<f" if size == 4 else "<d",
                               op, next_pc)
        signed = op.endswith("_s")
        bits = size * 8
        target = MASK64 if op.startswith("i64") else MASK32
        return _load_int(offset, size, bits, signed, target, op, next_pc)
    if is_float:
        return _store_float(offset, size, "<f" if size == 4 else "<d",
                            op, next_pc)
    return _store_int(offset, size, (1 << (size * 8)) - 1, op, next_pc)

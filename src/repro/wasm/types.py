"""WebAssembly value and function types."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ValType", "I32", "I64", "F32", "F64", "FuncType", "Limits",
           "GlobalType", "TableType", "MemoryType"]


class ValType:
    """A Wasm value type; instances are the four singletons below."""

    __slots__ = ("name", "code", "bits")

    def __init__(self, name: str, code: int, bits: int):
        self.name = name
        self.code = code
        self.bits = bits

    def __repr__(self) -> str:
        return self.name

    def __reduce__(self):
        # Equality is identity (these are singletons); unpickling must
        # resolve to the canonical instance, not construct a copy —
        # modules round-trip through the shared on-disk caches.
        return (ValType.from_name, (self.name,))

    @property
    def is_float(self) -> bool:
        return self.name.startswith("f")

    @staticmethod
    def from_code(code: int) -> "ValType":
        try:
            return _BY_CODE[code]
        except KeyError:
            raise ValueError(f"unknown value type code 0x{code:02x}") from None

    @staticmethod
    def from_name(name: str) -> "ValType":
        try:
            return _BY_NAME[name]
        except KeyError:
            raise ValueError(f"unknown value type {name!r}") from None


I32 = ValType("i32", 0x7F, 32)
I64 = ValType("i64", 0x7E, 64)
F32 = ValType("f32", 0x7D, 32)
F64 = ValType("f64", 0x7C, 64)

_BY_CODE = {t.code: t for t in (I32, I64, F32, F64)}
_BY_NAME = {t.name: t for t in (I32, I64, F32, F64)}


@dataclass(frozen=True)
class FuncType:
    """A function signature: parameter and result types."""

    params: tuple[ValType, ...] = ()
    results: tuple[ValType, ...] = ()

    def __repr__(self) -> str:
        ps = " ".join(p.name for p in self.params)
        rs = " ".join(r.name for r in self.results)
        return f"(func ({ps}) -> ({rs}))"


@dataclass(frozen=True)
class Limits:
    """Table/memory limits (min pages/elements, optional max)."""

    minimum: int
    maximum: int | None = None


@dataclass(frozen=True)
class GlobalType:
    valtype: ValType
    mutable: bool


@dataclass(frozen=True)
class TableType:
    limits: Limits
    elem_kind: int = 0x70  # funcref


@dataclass(frozen=True)
class MemoryType:
    limits: Limits

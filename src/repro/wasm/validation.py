"""Type-checking validation with per-instruction stack typing.

Beyond rejecting ill-typed modules, the validator records which value
types each instruction pops.  The instrumenter (§3.3.1) needs this to
spill and duplicate instruction operands into the low-level hooks, and
it is exactly the analysis Wasabi performs before injecting hooks.

The algorithm is the reference one from the Wasm spec appendix: a value
stack interleaved with control frames, with stack-polymorphic typing
after unconditional branches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .module import Function, Module
from .opcodes import Instr, memory_access_size
from .types import F32, F64, FuncType, I32, I64, ValType

__all__ = ["ValidationError", "validate_module", "type_function",
           "InstructionTyping"]

UNKNOWN = "unknown"  # stack-polymorphic placeholder


class ValidationError(ValueError):
    """Raised when a module fails type checking."""


@dataclass
class InstructionTyping:
    """Typing facts for one instruction occurrence.

    ``pops`` lists popped operand types bottom-to-top (so ``pops[-1]``
    is the stack top); entries may be the string ``"unknown"`` inside
    unreachable code.  ``pushes`` lists pushed result types.
    ``reachable`` is False for dead code after an unconditional branch.
    """

    pops: list = field(default_factory=list)
    pushes: list = field(default_factory=list)
    reachable: bool = True


class _Ctrl:
    __slots__ = ("op", "start_types", "end_types", "height", "unreachable")

    def __init__(self, op, start_types, end_types, height):
        self.op = op
        self.start_types = start_types
        self.end_types = end_types
        self.height = height
        self.unreachable = False


class _Typer:
    def __init__(self, module: Module, func: Function):
        self.module = module
        self.func = func
        func_type = module.types[func.type_index]
        self.locals = list(func_type.params) + list(func.locals)
        self.results = list(func_type.results)
        self.vals: list = []
        self.ctrls: list[_Ctrl] = []
        self.typings: list[InstructionTyping] = []

    # -- stack primitives ---------------------------------------------------
    def push_val(self, valtype) -> None:
        self.vals.append(valtype)

    def pop_val(self, expect=None):
        frame = self.ctrls[-1]
        if len(self.vals) == frame.height:
            if frame.unreachable:
                return expect if expect is not None else UNKNOWN
            raise ValidationError("value stack underflow")
        got = self.vals.pop()
        if expect is not None and got is not UNKNOWN and got is not expect:
            raise ValidationError(f"expected {expect}, got {got}")
        return got if got is not UNKNOWN else (expect or UNKNOWN)

    def push_ctrl(self, op: str, start_types, end_types) -> None:
        self.ctrls.append(_Ctrl(op, start_types, end_types, len(self.vals)))
        for t in start_types:
            self.push_val(t)

    def pop_ctrl(self) -> _Ctrl:
        if not self.ctrls:
            raise ValidationError("control stack underflow")
        frame = self.ctrls[-1]
        popped = [self.pop_val(t) for t in reversed(frame.end_types)]
        if len(self.vals) != frame.height:
            raise ValidationError("values left on stack at block end")
        self.ctrls.pop()
        return frame

    def mark_unreachable(self) -> None:
        frame = self.ctrls[-1]
        del self.vals[frame.height:]
        frame.unreachable = True

    def label_types(self, frame: _Ctrl):
        return frame.start_types if frame.op == "loop" else frame.end_types

    def frame_at(self, depth: int) -> _Ctrl:
        if depth >= len(self.ctrls):
            raise ValidationError(f"branch depth {depth} out of range")
        return self.ctrls[len(self.ctrls) - 1 - depth]

    # -- driver -------------------------------------------------------------
    def run(self) -> list[InstructionTyping]:
        self.push_ctrl("func", (), tuple(self.results))
        for instr in self.func.body:
            reachable = not self.ctrls[-1].unreachable
            typing = InstructionTyping(reachable=reachable)
            before = list(self.vals)
            self._step(instr, typing)
            # Record pops/pushes by diffing against the explicit lists
            # the step recorded (populated by _step).
            self.typings.append(typing)
        # Implicit final end.
        frame = self.pop_ctrl()
        if self.ctrls:
            raise ValidationError("unbalanced control structure")
        return self.typings

    def _step(self, instr: Instr, typing: InstructionTyping) -> None:
        op = instr.op
        handler = getattr(self, "_op_" + op.replace(".", "_"), None)
        if handler is not None:
            handler(instr, typing)
            return
        sig = _SIGNATURES.get(op)
        if sig is None:
            raise ValidationError(f"no typing rule for {op}")
        pops, pushes = sig
        popped = [self.pop_val(t) for t in reversed(pops)]
        typing.pops = list(reversed(popped))
        for t in pushes:
            self.push_val(t)
        typing.pushes = list(pushes)

    # -- control-flow rules ----------------------------------------------------
    def _block_types(self, instr: Instr):
        if instr.args[0] is None:
            return ()
        return (ValType.from_name(instr.args[0]),)

    def _op_block(self, instr, typing):
        self.push_ctrl("block", (), self._block_types(instr))

    def _op_loop(self, instr, typing):
        self.push_ctrl("loop", (), self._block_types(instr))

    def _op_if(self, instr, typing):
        typing.pops = [self.pop_val(I32)]
        self.push_ctrl("if", (), self._block_types(instr))

    def _op_else(self, instr, typing):
        frame = self.pop_ctrl()
        if frame.op != "if":
            raise ValidationError("else without if")
        self.push_ctrl("else", (), frame.end_types)

    def _op_end(self, instr, typing):
        frame = self.pop_ctrl()
        for t in frame.end_types:
            self.push_val(t)
        typing.pushes = list(frame.end_types)

    def _op_br(self, instr, typing):
        frame = self.frame_at(instr.args[0])
        typing.pops = [self.pop_val(t)
                       for t in reversed(self.label_types(frame))][::-1]
        self.mark_unreachable()

    def _op_br_if(self, instr, typing):
        cond = self.pop_val(I32)
        frame = self.frame_at(instr.args[0])
        labels = list(self.label_types(frame))
        popped = [self.pop_val(t) for t in reversed(labels)]
        for t in labels:
            self.push_val(t)
        typing.pops = list(reversed(popped)) + [cond]
        typing.pushes = labels

    def _op_br_table(self, instr, typing):
        index = self.pop_val(I32)
        labels, default = instr.args
        default_frame = self.frame_at(default)
        expected = list(self.label_types(default_frame))
        for label in labels:
            frame = self.frame_at(label)
            if list(self.label_types(frame)) != expected:
                raise ValidationError("br_table label arity mismatch")
        popped = [self.pop_val(t) for t in reversed(expected)]
        typing.pops = list(reversed(popped)) + [index]
        self.mark_unreachable()

    def _op_return(self, instr, typing):
        typing.pops = [self.pop_val(t) for t in reversed(self.results)][::-1]
        self.mark_unreachable()

    def _op_unreachable(self, instr, typing):
        self.mark_unreachable()

    def _op_call(self, instr, typing):
        func_type = self.module.function_type(instr.args[0])
        popped = [self.pop_val(t) for t in reversed(func_type.params)]
        typing.pops = list(reversed(popped))
        for t in func_type.results:
            self.push_val(t)
        typing.pushes = list(func_type.results)

    def _op_call_indirect(self, instr, typing):
        slot = self.pop_val(I32)
        func_type = self.module.types[instr.args[0]]
        popped = [self.pop_val(t) for t in reversed(func_type.params)]
        typing.pops = list(reversed(popped)) + [slot]
        for t in func_type.results:
            self.push_val(t)
        typing.pushes = list(func_type.results)

    # -- variables ---------------------------------------------------------------
    def _local_type(self, index: int) -> ValType:
        if index >= len(self.locals):
            raise ValidationError(f"local index {index} out of range")
        return self.locals[index]

    def _op_local_get(self, instr, typing):
        t = self._local_type(instr.args[0])
        self.push_val(t)
        typing.pushes = [t]

    def _op_local_set(self, instr, typing):
        t = self._local_type(instr.args[0])
        typing.pops = [self.pop_val(t)]

    def _op_local_tee(self, instr, typing):
        t = self._local_type(instr.args[0])
        typing.pops = [self.pop_val(t)]
        self.push_val(t)
        typing.pushes = [t]

    def _global_type(self, index: int):
        imported = [imp for imp in self.module.imports if imp.kind == "global"]
        if index < len(imported):
            return imported[index].desc
        local_index = index - len(imported)
        if local_index >= len(self.module.globals):
            raise ValidationError(f"global index {index} out of range")
        return self.module.globals[local_index].type

    def _op_global_get(self, instr, typing):
        t = self._global_type(instr.args[0]).valtype
        self.push_val(t)
        typing.pushes = [t]

    def _op_global_set(self, instr, typing):
        gtype = self._global_type(instr.args[0])
        if not gtype.mutable:
            raise ValidationError("global.set on immutable global")
        typing.pops = [self.pop_val(gtype.valtype)]

    # -- polymorphic parametric ops -------------------------------------------------
    def _op_drop(self, instr, typing):
        typing.pops = [self.pop_val()]

    def _op_select(self, instr, typing):
        cond = self.pop_val(I32)
        second = self.pop_val()
        expect = None if second is UNKNOWN else second
        first = self.pop_val(expect)
        result = first if first is not UNKNOWN else second
        typing.pops = [first, second, cond]
        self.push_val(result)
        typing.pushes = [result]


def _build_signatures() -> dict[str, tuple[tuple, tuple]]:
    sigs: dict[str, tuple[tuple, tuple]] = {
        "nop": ((), ()),
        "i32.const": ((), (I32,)),
        "i64.const": ((), (I64,)),
        "f32.const": ((), (F32,)),
        "f64.const": ((), (F64,)),
        "memory.size": ((), (I32,)),
        "memory.grow": ((I32,), (I32,)),
    }
    for prefix, valtype in (("i32", I32), ("i64", I64),
                            ("f32", F32), ("f64", F64)):
        # Loads: address -> value; stores: address, value -> ()
        sigs[f"{prefix}.load"] = ((I32,), (valtype,))
        sigs[f"{prefix}.store"] = ((I32, valtype), ())
    for op in ("i32.load8_s", "i32.load8_u", "i32.load16_s", "i32.load16_u"):
        sigs[op] = ((I32,), (I32,))
    for op in ("i64.load8_s", "i64.load8_u", "i64.load16_s", "i64.load16_u",
               "i64.load32_s", "i64.load32_u"):
        sigs[op] = ((I32,), (I64,))
    for op in ("i32.store8", "i32.store16"):
        sigs[op] = ((I32, I32), ())
    for op in ("i64.store8", "i64.store16", "i64.store32"):
        sigs[op] = ((I32, I64), ())
    int_binops = ("add sub mul div_s div_u rem_s rem_u and or xor shl "
                  "shr_s shr_u rotl rotr").split()
    int_relops = "eq ne lt_s lt_u gt_s gt_u le_s le_u ge_s ge_u".split()
    int_unops = "clz ctz popcnt".split()
    for prefix, valtype in (("i32", I32), ("i64", I64)):
        for name in int_binops:
            sigs[f"{prefix}.{name}"] = ((valtype, valtype), (valtype,))
        for name in int_relops:
            sigs[f"{prefix}.{name}"] = ((valtype, valtype), (I32,))
        for name in int_unops:
            sigs[f"{prefix}.{name}"] = ((valtype,), (valtype,))
        sigs[f"{prefix}.eqz"] = ((valtype,), (I32,))
    float_binops = "add sub mul div min max copysign".split()
    float_relops = "eq ne lt gt le ge".split()
    float_unops = "abs neg ceil floor trunc nearest sqrt".split()
    for prefix, valtype in (("f32", F32), ("f64", F64)):
        for name in float_binops:
            sigs[f"{prefix}.{name}"] = ((valtype, valtype), (valtype,))
        for name in float_relops:
            sigs[f"{prefix}.{name}"] = ((valtype, valtype), (I32,))
        for name in float_unops:
            sigs[f"{prefix}.{name}"] = ((valtype,), (valtype,))
    # Conversions.
    sigs["i32.wrap_i64"] = ((I64,), (I32,))
    for dst, dtype in (("i32", I32), ("i64", I64)):
        for src, stype in (("f32", F32), ("f64", F64)):
            sigs[f"{dst}.trunc_{src}_s"] = ((stype,), (dtype,))
            sigs[f"{dst}.trunc_{src}_u"] = ((stype,), (dtype,))
    sigs["i64.extend_i32_s"] = ((I32,), (I64,))
    sigs["i64.extend_i32_u"] = ((I32,), (I64,))
    for dst, dtype in (("f32", F32), ("f64", F64)):
        for src, stype in (("i32", I32), ("i64", I64)):
            sigs[f"{dst}.convert_{src}_s"] = ((stype,), (dtype,))
            sigs[f"{dst}.convert_{src}_u"] = ((stype,), (dtype,))
    sigs["f32.demote_f64"] = ((F64,), (F32,))
    sigs["f64.promote_f32"] = ((F32,), (F64,))
    sigs["i32.reinterpret_f32"] = ((F32,), (I32,))
    sigs["i64.reinterpret_f64"] = ((F64,), (I64,))
    sigs["f32.reinterpret_i32"] = ((I32,), (F32,))
    sigs["f64.reinterpret_i64"] = ((I64,), (F64,))
    return sigs


_SIGNATURES = _build_signatures()


def type_function(module: Module, func: Function) -> list[InstructionTyping]:
    """Type-check one function, returning per-instruction typings.

    Raises :class:`ValidationError` for every rejection: raw
    ``IndexError``/``KeyError``/``ValueError`` escaping the typer (an
    out-of-range type or function index reached through a hostile but
    parseable module) are lifted into the typed diagnostic instead of
    crashing the caller.
    """
    try:
        return _Typer(module, func).run()
    except ValidationError:
        raise
    except (IndexError, KeyError, ValueError) as exc:
        raise ValidationError(
            f"malformed reference ({type(exc).__name__}: {exc})") from None


def validate_module(module: Module) -> None:
    """Validate every function body; raises :class:`ValidationError`."""
    _check_module_structure(module)
    for i, func in enumerate(module.functions):
        try:
            type_function(module, func)
        except ValidationError as exc:
            raise ValidationError(f"function {i}: {exc}") from None


def _check_module_structure(module: Module) -> None:
    """Module-level index-consistency checks run before function
    typing, so the typer never dereferences an out-of-range index."""
    n_types = len(module.types)
    n_funcs = module.num_imported_functions + len(module.functions)
    for i, func in enumerate(module.functions):
        if func.type_index >= n_types:
            raise ValidationError(
                f"function {i}: type index {func.type_index} out of "
                f"range ({n_types} types)")
    for imp in module.imports:
        if imp.kind == "func" and imp.desc >= n_types:
            raise ValidationError(
                f"import {imp.module}.{imp.name}: type index {imp.desc} "
                f"out of range ({n_types} types)")
    for exp in module.exports:
        if exp.kind == "func" and exp.index >= n_funcs:
            raise ValidationError(
                f"export {exp.name!r}: function index {exp.index} out "
                f"of range ({n_funcs} functions)")
    if module.start is not None and module.start >= n_funcs:
        raise ValidationError(
            f"start function index {module.start} out of range")
    for i, elem in enumerate(module.elements):
        for func_index in elem.func_indices:
            if func_index >= n_funcs:
                raise ValidationError(
                    f"element segment {i}: function index {func_index} "
                    f"out of range ({n_funcs} functions)")

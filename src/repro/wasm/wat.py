"""WebAssembly text-format (WAT) rendering.

A disassembler for inspection and debugging: renders a
:class:`~repro.wasm.module.Module` in the folded-free, linear WAT
style the paper's listings use (e.g. the §4.3 verification snippets).
Round-trip parsing is not a goal — the binary codec is canonical — but
the output is valid-looking WAT that diffs cleanly between e.g. a
contract and its obfuscated variant.
"""

from __future__ import annotations

from .module import Module
from .opcodes import Instr
from .types import FuncType

__all__ = ["render_module", "render_function", "render_instruction"]

_EXPORT_KIND_ORDER = {"func": 0, "table": 1, "memory": 2, "global": 3}


def render_instruction(instr: Instr) -> str:
    """One instruction in WAT notation."""
    kind = instr.immediate_kind
    if kind == "none":
        return instr.op
    if kind == "block":
        if instr.args[0] is None:
            return instr.op
        return f"{instr.op} (result {instr.args[0]})"
    if kind == "memarg":
        align, offset = instr.args
        parts = [instr.op]
        if offset:
            parts.append(f"offset={offset}")
        if align:
            parts.append(f"align={1 << align}")
        return " ".join(parts)
    if kind == "br_table":
        labels, default = instr.args
        return " ".join([instr.op, *map(str, labels), str(default)])
    if kind == "call_ind":
        return f"{instr.op} (type {instr.args[0]})"
    return f"{instr.op} {' '.join(str(a) for a in instr.args)}"


def _render_functype(func_type: FuncType) -> str:
    parts = []
    if func_type.params:
        parts.append("(param " + " ".join(p.name for p in func_type.params)
                     + ")")
    if func_type.results:
        parts.append("(result "
                     + " ".join(r.name for r in func_type.results) + ")")
    return " ".join(parts)


def render_function(module: Module, local_index: int,
                    name: str | None = None) -> str:
    """One local function with indented structured control flow."""
    func = module.functions[local_index]
    func_type = module.types[func.type_index]
    header = f"(func ${name or f'f{local_index}'}"
    signature = _render_functype(func_type)
    if signature:
        header += " " + signature
    lines = [header]
    if func.locals:
        lines.append("  (local " + " ".join(l.name for l in func.locals)
                     + ")")
    depth = 1
    for instr in func.body:
        if instr.op in ("end", "else"):
            depth = max(depth - 1, 1)
        lines.append("  " * depth + render_instruction(instr))
        if instr.op in ("block", "loop", "if", "else"):
            depth += 1
    lines.append(")")
    return "\n".join(lines)


def render_module(module: Module) -> str:
    """The whole module as WAT."""
    lines = ["(module"]
    for i, func_type in enumerate(module.types):
        signature = _render_functype(func_type)
        lines.append(f"  (type (;{i};) (func"
                     + (f" {signature}" if signature else "") + "))")
    func_index = 0
    for imp in module.imports:
        if imp.kind == "func":
            func_type = module.types[imp.desc]
            signature = _render_functype(func_type)
            lines.append(f'  (import "{imp.module}" "{imp.name}" '
                         f"(func (;{func_index};)"
                         + (f" {signature}" if signature else "") + "))")
            func_index += 1
        else:
            lines.append(f'  (import "{imp.module}" "{imp.name}" '
                         f"({imp.kind}))")
    for memory in module.memories:
        maximum = ("" if memory.limits.maximum is None
                   else f" {memory.limits.maximum}")
        lines.append(f"  (memory {memory.limits.minimum}{maximum})")
    for table in module.tables:
        maximum = ("" if table.limits.maximum is None
                   else f" {table.limits.maximum}")
        lines.append(f"  (table {table.limits.minimum}{maximum} funcref)")
    for i, glob in enumerate(module.globals):
        mutability = (f"(mut {glob.type.valtype.name})"
                      if glob.type.mutable else glob.type.valtype.name)
        init = " ".join(render_instruction(instr) for instr in glob.init)
        lines.append(f"  (global (;{i};) {mutability} ({init}))")
    exports = {e.index: e.name for e in module.exports if e.kind == "func"}
    for local_index in range(len(module.functions)):
        name = exports.get(module.num_imported_functions + local_index)
        body = render_function(module, local_index, name)
        lines.append("  " + body.replace("\n", "\n  "))
        if name is not None:
            lines.append(f'  (export "{name}" (func '
                         f"${name}))")
    for elem in module.elements:
        offset = " ".join(render_instruction(i) for i in elem.offset)
        funcs = " ".join(str(i) for i in elem.func_indices)
        lines.append(f"  (elem (i32.const {elem.offset[0].args[0]}) "
                     f"func {funcs})")
    for segment in module.data_segments:
        preview = segment.data[:24]
        rendered = "".join(
            chr(b) if 0x20 <= b < 0x7F and b != 0x22 else f"\\{b:02x}"
            for b in preview)
        suffix = "..." if len(segment.data) > 24 else ""
        lines.append(f"  (data (i32.const {segment.offset[0].args[0]}) "
                     f'"{rendered}{suffix}")')
    lines.append(")")
    return "\n".join(lines)

"""Tests for the EOSFuzzer and EOSAFE baseline models (§4.2, §4.3)."""

import pytest

from repro.baselines import EosafeAnalyzer
from repro.benchgen import (ContractConfig, generate_contract,
                            inject_verification, obfuscate_module)
from repro.harness import run_eosafe, run_eosfuzzer


# -- EOSAFE: static analysis --------------------------------------------------

def analyze(config: ContractConfig):
    generated = generate_contract(config)
    return generated, EosafeAnalyzer().analyze(generated.module)


def test_eosafe_locates_canonical_dispatcher():
    _, result = analyze(ContractConfig(seed=1,
                                       dispatcher_style="canonical"))
    assert result.located_dispatch


def test_eosafe_misses_variant_dispatcher():
    """The §4.2 FN mechanism: the SDK does not mandate the i64.eq
    pattern, so eqz(action - N(x)) dispatchers escape the heuristic."""
    _, result = analyze(ContractConfig(seed=1,
                                       dispatcher_style="variant"))
    assert not result.located_dispatch


def test_eosafe_fake_eos_guard_recognised():
    _, safe = analyze(ContractConfig(seed=2, fake_eos_guard=True))
    assert not safe.findings["fake_eos"]
    _, vul = analyze(ContractConfig(seed=2, fake_eos_guard=False))
    assert vul.findings["fake_eos"]


def test_eosafe_fake_eos_fn_on_variant():
    _, result = analyze(ContractConfig(seed=3, fake_eos_guard=False,
                                       dispatcher_style="variant"))
    assert not result.findings["fake_eos"]  # FN: path not located


def test_eosafe_fake_notif_timeout_positive():
    """'EOSAFE regards timeout as a positive sample': unlocated
    dispatch means a Fake Notif report, even for patched contracts."""
    _, result = analyze(ContractConfig(seed=4, fake_notif_guard=True,
                                       dispatcher_style="variant"))
    assert result.findings["fake_notif"]  # FP by construction


def test_eosafe_fake_notif_guard_found_when_located():
    _, result = analyze(ContractConfig(seed=4, fake_notif_guard=True,
                                       dispatcher_style="canonical"))
    assert not result.findings["fake_notif"]


def test_eosafe_missauth():
    _, vul = analyze(ContractConfig(seed=5, auth_check=False,
                                    dispatcher_style="canonical"))
    assert vul.findings["missauth"]
    _, safe = analyze(ContractConfig(seed=5, auth_check=True,
                                     dispatcher_style="canonical"))
    assert not safe.findings["missauth"]


def test_eosafe_no_blockinfodep_detector():
    _, result = analyze(ContractConfig(seed=6, use_blockinfo=True,
                                       dispatcher_style="canonical"))
    assert not result.findings["blockinfodep"]


def test_eosafe_rollback_ignores_reachability():
    """'EOSAFE analyzes all branches ... even if the constraints are
    impossible': the unreachable-reward twin is still flagged."""
    _, result = analyze(ContractConfig(seed=7, reward_scheme="inline",
                                       unreachable_reward=True))
    assert result.findings["rollback"]  # FP: the 50% precision source


def test_eosafe_obfuscation_kills_pattern_matching():
    generated = generate_contract(ContractConfig(
        seed=8, fake_eos_guard=False, auth_check=False,
        dispatcher_style="canonical"))
    plain = EosafeAnalyzer().analyze(generated.module)
    assert plain.findings["fake_eos"]
    obfuscated = obfuscate_module(generated.module, seed=8)
    result = EosafeAnalyzer().analyze(obfuscated)
    assert not result.located_dispatch
    assert not result.findings["fake_eos"]   # Table 5: 0 TP
    assert not result.findings["missauth"]   # Table 5: 0 TP
    assert result.findings["fake_notif"]     # timeout => positive


def test_eosafe_verification_short_paths_survive():
    """Table 6: the injected guards only add short paths, which the
    exhaustive static search still covers."""
    generated = generate_contract(ContractConfig(
        seed=9, fake_eos_guard=False, dispatcher_style="canonical"))
    module = inject_verification(generated.module)
    result = EosafeAnalyzer().analyze(module)
    assert result.located_dispatch
    assert result.findings["fake_eos"]


def test_eosafe_path_budget_timeout():
    analyzer = EosafeAnalyzer(path_budget=2)
    generated = generate_contract(ContractConfig(seed=10, maze_depth=4))
    result = analyzer.analyze(generated.module)
    assert result.timeout
    assert result.findings["fake_notif"]  # timeout-positive


# -- EOSFuzzer: random fuzzing with flawed oracles ---------------------------------

def test_eosfuzzer_no_missauth_or_rollback_oracle():
    generated = generate_contract(ContractConfig(
        seed=11, auth_check=False, reward_scheme="inline"))
    run = run_eosfuzzer(generated.module, generated.abi,
                        timeout_ms=10_000)
    assert not run.scan.detected("missauth")
    assert not run.scan.detected("rollback")


def test_eosfuzzer_detects_unguarded_fake_eos():
    generated = generate_contract(ContractConfig(seed=12,
                                                 fake_eos_guard=False))
    run = run_eosfuzzer(generated.module, generated.abi,
                        timeout_ms=10_000)
    assert run.scan.detected("fake_eos")


def test_eosfuzzer_verification_collapse():
    """Table 6's 50% precision: when every transaction dies at the
    injected verification, the flawed oracle flags the sample anyway.
    """
    generated = generate_contract(ContractConfig(
        seed=13, fake_eos_guard=True, has_payout=False))
    from repro.benchgen import VerificationSpec
    # A quantity no random seed will produce.
    module = inject_verification(generated.module,
                                 VerificationSpec(amount=987_654_321_123))
    run = run_eosfuzzer(module, generated.abi, timeout_ms=10_000)
    assert run.scan.detected("fake_eos")  # the oracle flaw fires


def test_eosfuzzer_misses_guarded_deep_fake_notif():
    """No feedback: a vulnerable eosponser behind an input maze is
    unexplored, producing the FNs Table 4 reports."""
    generated = generate_contract(ContractConfig(
        seed=14, fake_notif_guard=False, maze_depth=5))
    run = run_eosfuzzer(generated.module, generated.abi,
                        timeout_ms=10_000)
    # (Statistical, but the maze constants make a hit vanishingly
    # unlikely at this budget.)
    assert not run.scan.detected("fake_notif")

"""Tests for the benchmark corpus generator and its transformations."""

import random

import pytest

from repro.benchgen import (ContractConfig, PAPER_COUNTS, VULN_TYPES,
                            VerificationSpec, build_rq1_contracts,
                            build_table4_corpus, build_wild_corpus,
                            generate_contract, inject_verification,
                            obfuscate_module, obfuscated_variant,
                            verification_variant)
from repro.benchgen.obfuscate import popcount_encode_constant
from repro.eosio import N
from repro.wasm import (Instance, encode_module, parse_module,
                        validate_module)


# -- contract generation ---------------------------------------------------

@pytest.mark.parametrize("seed", range(4))
def test_generated_contracts_validate_and_roundtrip(seed):
    config = ContractConfig(seed=seed, maze_depth=seed,
                            db_dependency=bool(seed % 2),
                            use_blockinfo=bool(seed % 2))
    generated = generate_contract(config)
    validate_module(generated.module)
    reparsed = parse_module(encode_module(generated.module))
    validate_module(reparsed)


def test_ground_truth_follows_config():
    truth = ContractConfig(fake_eos_guard=False, reward_scheme="inline",
                           use_blockinfo=True,
                           auth_check=False).ground_truth()
    assert truth == {"fake_eos": True, "fake_notif": False,
                     "missauth": True, "blockinfodep": True,
                     "rollback": True}


def test_unreachable_reward_clears_dynamic_truths():
    truth = ContractConfig(reward_scheme="inline", use_blockinfo=True,
                           unreachable_reward=True).ground_truth()
    assert not truth["rollback"]
    assert not truth["blockinfodep"]


def test_generation_is_deterministic():
    a = generate_contract(ContractConfig(seed=42, maze_depth=3))
    b = generate_contract(ContractConfig(seed=42, maze_depth=3))
    assert encode_module(a.module) == encode_module(b.module)


def test_maze_witness_exposed():
    generated = generate_contract(ContractConfig(seed=1, maze_depth=2))
    assert generated.maze_witness is not None
    assert 20_000 <= generated.maze_witness["amount"] < 1_000_000_000
    assert generate_contract(
        ContractConfig(seed=1, maze_depth=0)).maze_witness is None


def test_abi_covers_actions():
    generated = generate_contract(ContractConfig(seed=2))
    assert set(generated.abi.action_names()) == {"transfer", "init",
                                                 "payout"}
    no_payout = generate_contract(ContractConfig(seed=2,
                                                 has_payout=False))
    assert "payout" not in no_payout.abi.action_names()


def test_dispatcher_styles_differ_in_bytecode():
    canonical = generate_contract(ContractConfig(
        seed=3, dispatcher_style="canonical"))
    variant = generate_contract(ContractConfig(
        seed=3, dispatcher_style="variant"))
    apply_c = canonical.module.local_function(
        canonical.module.export_index("apply", "func"))
    apply_v = variant.module.local_function(
        variant.module.export_index("apply", "func"))
    assert any(i.op == "i64.eq" for i in apply_c.body)
    assert any(i.op == "i64.eqz" for i in apply_v.body)


# -- obfuscation ----------------------------------------------------------------

def test_popcount_encoding_preserves_value():
    rng = random.Random(0)
    value = N("eosio.token")
    instrs = popcount_encode_constant(value, rng)
    # Evaluate the four-instruction sequence by hand.
    x = instrs[0].args[0] & 0xFFFFFFFFFFFFFFFF
    rest = instrs[2].args[0] & 0xFFFFFFFFFFFFFFFF
    assert (bin(x).count("1") + rest) & 0xFFFFFFFFFFFFFFFF == value


def test_obfuscated_module_validates():
    generated = generate_contract(ContractConfig(seed=4, maze_depth=2))
    obfuscated = obfuscate_module(generated.module, seed=4)
    validate_module(obfuscated)
    validate_module(parse_module(encode_module(obfuscated)))


def test_obfuscation_removes_literal_name_constants():
    generated = generate_contract(ContractConfig(seed=5))
    obfuscated = obfuscate_module(generated.module, seed=5)
    token = N("eosio.token")
    signed_token = token - (1 << 64) if token >= 1 << 63 else token
    remaining = [i for f in obfuscated.functions for i in f.body
                 if i.op == "i64.const" and i.args[0] == signed_token]
    assert not remaining


def test_obfuscation_adds_decoy_function():
    generated = generate_contract(ContractConfig(seed=6))
    obfuscated = obfuscate_module(generated.module, seed=6)
    assert len(obfuscated.functions) == len(generated.module.functions) + 1


def test_obfuscation_preserves_behaviour():
    """Differential check: the decoy/popcount transforms must keep the
    dispatcher's runtime values identical."""
    from repro.engine.deploy import deploy_target, setup_chain
    from repro.eosio import Asset, Encoder, issue_to, token_balance
    for which in ("plain", "obfuscated"):
        generated = generate_contract(ContractConfig(
            seed=7, reward_scheme="inline", fake_eos_guard=True))
        module = (generated.module if which == "plain"
                  else obfuscate_module(generated.module, seed=7))
        chain = setup_chain()
        deploy_target(chain, "victim", module, generated.abi)
        issue_to(chain, "eosio.token", "victim", "100.0000 EOS")
        data = (Encoder().name("player").name("victim")
                .asset(Asset.from_string("5.0000 EOS")).string("x")
                .bytes())
        result = chain.push_action("eosio.token", "transfer", ["player"],
                                   data)
        assert result.success, (which, result.error)
        balance = token_balance(chain, "eosio.token", "player")
        if which == "plain":
            plain_balance = balance
        else:
            assert balance == plain_balance


# -- verification injection ------------------------------------------------------------

def test_injected_verification_validates():
    generated = generate_contract(ContractConfig(seed=8))
    module = inject_verification(generated.module)
    validate_module(module)


def test_verification_rejects_wrong_quantity():
    from repro.engine.deploy import deploy_target, setup_chain
    from repro.eosio import Asset, Encoder, issue_to
    generated = generate_contract(ContractConfig(seed=9))
    module = inject_verification(generated.module,
                                 VerificationSpec(amount=100_000))
    chain = setup_chain()
    deploy_target(chain, "victim", module, generated.abi)
    issue_to(chain, "eosio.token", "victim", "100.0000 EOS")

    def pay(amount):
        data = (Encoder().name("player").name("victim")
                .asset(Asset(amount)).string("m").bytes())
        return chain.push_action("eosio.token", "transfer", ["player"],
                                 data)

    assert not pay(50_000).success         # wrong amount: unreachable
    assert pay(100_000).success            # the elaborate input


# -- corpora --------------------------------------------------------------------------

def test_table4_corpus_is_balanced():
    samples = build_table4_corpus(scale=0.01)
    for vuln_type in VULN_TYPES:
        subset = [s for s in samples if s.vuln_type == vuln_type]
        vulnerable = sum(1 for s in subset if s.label)
        assert vulnerable * 2 == len(subset)


def test_table4_full_scale_counts():
    samples = build_table4_corpus(scale=0.05)
    for vuln_type in VULN_TYPES:
        subset = [s for s in samples if s.vuln_type == vuln_type]
        expected = 2 * max(1, round(PAPER_COUNTS[vuln_type] * 0.05 / 2))
        assert len(subset) == expected


def test_table4_ground_truth_consistent():
    for sample in build_table4_corpus(scale=0.01):
        assert sample.contract.ground_truth[sample.vuln_type] \
            == sample.label


def test_variants_preserve_labels():
    samples = build_table4_corpus(scale=0.005)
    for sample in samples:
        assert obfuscated_variant(sample).label == sample.label
        assert verification_variant(sample).label == sample.label


def test_rq1_contracts_generate():
    contracts = build_rq1_contracts(count=5, seed=1)
    assert len(contracts) == 5
    for generated in contracts:
        validate_module(generated.module)
        assert generated.config.maze_depth >= 4


def test_wild_corpus_majority_vulnerable():
    wild = build_wild_corpus(scale=0.2)
    vulnerable = sum(1 for w in wild
                     if any(w.ground_truth.values()))
    assert vulnerable / len(wild) > 0.55
    assert any(w.still_operating for w in wild)
    assert any(not w.still_operating for w in wild)

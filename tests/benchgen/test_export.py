"""Tests for corpus export/load."""

from repro.benchgen import (build_table4_corpus, export_corpus,
                            load_corpus, obfuscated_variant)
from repro.harness import run_eosafe
from repro.wasm import encode_module, validate_module


def test_roundtrip_preserves_labels_and_binaries(tmp_path):
    samples = build_table4_corpus(scale=0.004)
    export_corpus(samples, tmp_path)
    loaded = load_corpus(tmp_path)
    assert len(loaded) == len(samples)
    for original, restored in zip(samples, loaded):
        assert restored.vuln_type == original.vuln_type
        assert restored.label == original.label
        assert encode_module(restored.module) \
            == encode_module(original.module)
        assert restored.contract.ground_truth \
            == original.contract.ground_truth
        validate_module(restored.module)


def test_loaded_corpus_is_analyzable(tmp_path):
    samples = build_table4_corpus(scale=0.004)[:4]
    export_corpus(samples, tmp_path)
    for sample in load_corpus(tmp_path):
        run_eosafe(sample.module)  # static analysis works on reload


def test_variant_metadata_survives(tmp_path):
    samples = [obfuscated_variant(s)
               for s in build_table4_corpus(scale=0.004)[:2]]
    export_corpus(samples, tmp_path)
    loaded = load_corpus(tmp_path)
    assert all(s.variant == "obfuscated" for s in loaded)


def test_manifest_written(tmp_path):
    import json
    samples = build_table4_corpus(scale=0.004)[:2]
    manifest_path = export_corpus(samples, tmp_path)
    doc = json.loads(manifest_path.read_text())
    assert doc["version"] == 1
    assert len(doc["samples"]) == 2
    assert (tmp_path / "sample-00000.wasm").exists()

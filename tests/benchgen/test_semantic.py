"""The semantic benchmark corpus: ground truth, reachability, no-FP.

These are end-to-end: every sample is fuzzed by a real campaign with
all nine oracles enabled, so they prove both directions of the
acceptance bar — each family's injected bug is *reachable* (the buggy
variant is detected by its own family) and each clean twin passes
**all** families (the zero-false-positive guard).
"""

import pytest

from repro.benchgen import (SEMANTIC_FAMILY_TYPES, SemanticConfig,
                            build_semantic_corpus,
                            generate_semantic_contract)
from repro.harness import run_wasai
from repro.semoracle import PAPER5, SEMANTIC_FAMILIES

FAST_TIMEOUT_MS = 8_000.0


@pytest.fixture(scope="module")
def corpus_runs():
    runs = []
    for sample in build_semantic_corpus(pairs=1, seed=11):
        contract = sample.contract
        run = run_wasai(contract.module, contract.abi,
                        account=contract.account,
                        timeout_ms=FAST_TIMEOUT_MS, oracles="all")
        runs.append((sample, run))
    return runs


def test_corpus_shape():
    samples = build_semantic_corpus(pairs=2)
    assert len(samples) == 2 * 2 * len(SEMANTIC_FAMILY_TYPES)
    assert set(SEMANTIC_FAMILY_TYPES) == set(SEMANTIC_FAMILIES)
    for sample in samples:
        assert sample.vuln_type in SEMANTIC_FAMILY_TYPES
        assert sample.contract.ground_truth[sample.vuln_type] \
            == sample.label


def test_unknown_family_rejected():
    with pytest.raises(ValueError):
        SemanticConfig(family="bogus", vulnerable=True)


def test_each_injected_bug_is_reachable(corpus_runs):
    """The buggy variant of every family is detected by that family."""
    for sample, run in corpus_runs:
        if not sample.label:
            continue
        finding = run.scan.findings[sample.vuln_type]
        assert finding.detected, \
            f"{sample.vuln_type} bug not reached: {finding.evidence}"
        assert finding.evidence


def test_clean_variants_pass_all_families(corpus_runs):
    """No clean twin trips *any* semantic family (the no-FP guard)."""
    for sample, run in corpus_runs:
        if sample.label:
            continue
        for family in SEMANTIC_FAMILIES:
            assert not run.scan.detected(family), \
                f"clean {sample.vuln_type} flagged as {family}"


def test_no_cross_family_false_positives(corpus_runs):
    """A buggy variant may only trip its own semantic family."""
    for sample, run in corpus_runs:
        if not sample.label:
            continue
        for family in SEMANTIC_FAMILIES:
            if family == sample.vuln_type:
                continue
            assert not run.scan.detected(family), \
                f"buggy {sample.vuln_type} cross-flagged as {family}"


def test_paper_oracles_match_ground_truth(corpus_runs):
    """The paper's five oracles stay honest on the semantic corpus —
    the only overlap is the buggy notif_chain variant, which genuinely
    lacks the to==_self guard (ground-truth fake_notif)."""
    for sample, run in corpus_runs:
        for vuln_type in PAPER5:
            assert run.scan.detected(vuln_type) \
                == sample.contract.ground_truth[vuln_type], \
                f"{sample.vuln_type}/{sample.label}: {vuln_type}"


def test_generate_is_deterministic():
    config = SemanticConfig(family="token_arith", vulnerable=True,
                            seed=5)
    from repro.wasm import encode_module
    first = generate_semantic_contract(config)
    again = generate_semantic_contract(config)
    assert encode_module(first.module) == encode_module(again.module)
    assert first.ground_truth == again.ground_truth

"""Tests for the address-pool extension (the paper's future work).

§4.2: "some smart contracts with the Rollback vulnerability can only
be invoked by the caller with the specific address, i.e., its
administrator.  However, we did not implement an address pool ...
Therefore, WASAI accidentally reports 9 FNs."  The extension mines
name-like constants from the bytecode and rotates them as the paying
identity, resolving exactly those FNs.
"""

import random

import pytest

from repro.benchgen import ContractConfig, generate_contract
from repro.engine import WasaiFuzzer, deploy_target, setup_chain
from repro.eosio.name import N
from repro.scanner import scan_report

ADMIN = "boss.account"


def run(address_pool: bool, timeout_ms=25_000):
    config = ContractConfig(seed=31, reward_scheme="inline",
                            admin_gate=ADMIN)
    generated = generate_contract(config)
    chain = setup_chain()
    target = deploy_target(chain, "victim", generated.module,
                           generated.abi)
    fuzzer = WasaiFuzzer(chain, target, rng=random.Random(2),
                         timeout_ms=timeout_ms,
                         address_pool=address_pool)
    report = fuzzer.run()
    return fuzzer, report, scan_report(report, target)


def test_admin_gated_rollback_is_fn_without_pool():
    _, _, scan = run(address_pool=False)
    assert not scan.detected("rollback"), (
        "without an address pool the admin gate blocks the reward "
        "path (the paper's FN mechanism)")


def test_address_pool_mines_admin_identity():
    fuzzer, _, _ = run(address_pool=True, timeout_ms=1_000)
    assert N(ADMIN) in fuzzer._identities


def test_admin_gated_rollback_found_with_pool():
    _, _, scan = run(address_pool=True)
    assert scan.detected("rollback"), (
        "the address pool should pay as the mined admin identity")


def test_pool_does_not_regress_plain_contracts():
    config = ContractConfig(seed=32, reward_scheme="inline")
    generated = generate_contract(config)
    chain = setup_chain()
    target = deploy_target(chain, "victim", generated.module,
                           generated.abi)
    fuzzer = WasaiFuzzer(chain, target, rng=random.Random(3),
                         timeout_ms=20_000, address_pool=True)
    scan = scan_report(fuzzer.run(), target)
    assert scan.detected("rollback")

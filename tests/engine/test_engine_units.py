"""Unit tests for the Engine's building blocks: seeds, pool, DBG, clock."""

import random

import pytest

from repro.engine import (DatabaseDependencyGraph, Seed, SeedPool,
                          VirtualClock, random_seed, random_value)
from repro.engine.clock import CostModel
from repro.eosio import Abi, Asset, Name, TRANSFER_SIGNATURE
from repro.eosio.database import DbOperation

ABI = Abi.from_signatures({"transfer": TRANSFER_SIGNATURE,
                           "init": (("owner", "name"),)})


# -- seeds -----------------------------------------------------------------

def test_random_seed_matches_signature():
    rng = random.Random(0)
    seed = random_seed(ABI.action("transfer"), rng, ["alice"])
    assert seed.action_name == "transfer"
    assert isinstance(seed.values[0], Name)
    assert isinstance(seed.values[2], Asset)
    assert isinstance(seed.values[3], str)


def test_random_seed_packs():
    rng = random.Random(1)
    seed = random_seed(ABI.action("transfer"), rng, ["alice"])
    packed = seed.pack(ABI.action("transfer"))
    assert len(packed) >= 25  # 8+8+16+len byte


def test_random_value_biases_known_names():
    rng = random.Random(3)
    names = [random_value("name", rng, ["alice"]) for _ in range(100)]
    hits = sum(1 for n in names if n == Name("alice"))
    assert hits > 40


def test_random_value_types():
    rng = random.Random(5)
    assert isinstance(random_value("bool", rng, []), bool)
    assert isinstance(random_value("uint32", rng, []), int)
    assert isinstance(random_value("bytes", rng, []), bytes)
    with pytest.raises(ValueError):
        random_value("matrix", rng, [])


# -- seed pool (§3.3.2) -------------------------------------------------------

def test_pool_is_circular():
    pool = SeedPool()
    for i in range(3):
        pool.add(Seed("transfer", [i]))
    first = pool.next("transfer")
    second = pool.next("transfer")
    third = pool.next("transfer")
    again = pool.next("transfer")
    assert [s.values[0] for s in (first, second, third, again)] \
        == [0, 1, 2, 0]


def test_pool_add_front_jumps_queue():
    pool = SeedPool()
    pool.add(Seed("transfer", ["old"]))
    pool.add_front(Seed("transfer", ["adaptive"], origin="adaptive"))
    assert pool.next("transfer").values == ["adaptive"]


def test_pool_empty_action_returns_none():
    pool = SeedPool()
    assert pool.next("nothing") is None


def test_pool_bounded():
    pool = SeedPool(max_per_action=4)
    for i in range(10):
        pool.add(Seed("transfer", [i]))
    assert pool.size("transfer") == 4


# -- DBG (§3.3.2) ----------------------------------------------------------------

def test_dbg_links_writer_to_reader():
    dbg = DatabaseDependencyGraph()
    table = (1, 1, 99)
    dbg.record("init", [DbOperation("write", *table)])
    dbg.record("transfer", [DbOperation("read", *table)])
    assert dbg.writers_of(table) == ["init"]
    assert dbg.tables_read_by("transfer") == [table]
    assert dbg.dependency_writers("transfer") == ["init"]


def test_dbg_ignores_self_dependency():
    dbg = DatabaseDependencyGraph()
    table = (1, 1, 99)
    dbg.record("upsert", [DbOperation("read", *table),
                          DbOperation("write", *table)])
    assert dbg.dependency_writers("upsert") == []


def test_dbg_multiple_tables():
    dbg = DatabaseDependencyGraph()
    t1, t2 = (1, 1, 1), (2, 2, 2)
    dbg.record("a", [DbOperation("write", *t1)])
    dbg.record("b", [DbOperation("write", *t2)])
    dbg.record("c", [DbOperation("read", *t1), DbOperation("read", *t2)])
    assert dbg.dependency_writers("c") == ["a", "b"]


def test_dbg_unknown_action():
    dbg = DatabaseDependencyGraph()
    assert dbg.dependency_writers("ghost") == []
    assert dbg.writers_of((0, 0, 0)) == []


# -- virtual clock ------------------------------------------------------------------

def test_clock_charges():
    clock = VirtualClock(CostModel(transaction_ms=10, replay_ms=5,
                                   smt_query_ms=100, smt_cap_ms=1000,
                                   iteration_overhead_ms=1))
    clock.charge_iteration()
    clock.charge_transaction()
    clock.charge_replay()
    clock.charge_smt(2)
    assert clock.now_ms == 1 + 10 + 5 + 200


def test_clock_capped_smt_costs_more():
    clock = VirtualClock(CostModel(smt_query_ms=100, smt_cap_ms=3000))
    clock.charge_smt(1, capped=True)
    assert clock.now_ms == 3000


def test_clock_expiry():
    clock = VirtualClock()
    assert not clock.expired(100)
    clock.charge(100)
    assert clock.expired(100)

"""Integration tests for the WASAI fuzzing loop (Algorithm 1)."""

import random

import pytest

from repro.benchgen import ContractConfig, generate_contract
from repro.engine import WasaiFuzzer, deploy_target, setup_chain
from repro.scanner import scan_report


def fuzz(config: ContractConfig, timeout_ms=15_000, seed=11,
         feedback=True):
    chain = setup_chain()
    generated = generate_contract(config)
    target = deploy_target(chain, config.account, generated.module,
                           generated.abi)
    fuzzer = WasaiFuzzer(chain, target, rng=random.Random(seed),
                         timeout_ms=timeout_ms, feedback=feedback)
    report = fuzzer.run()
    return generated, target, report


def test_campaign_produces_observations():
    _, _, report = fuzz(ContractConfig(seed=1))
    assert report.iterations > 10
    assert report.observations
    kinds = {o.payload_kind for o in report.observations}
    assert {"legit", "fake_notif"} <= kinds


def test_eosponser_located_from_legit_payment():
    generated, target, report = fuzz(ContractConfig(seed=2))
    assert report.eosponser_id is not None
    # It must be a local function of the module (not an import).
    assert report.eosponser_id >= target.module.num_imported_functions


def test_coverage_timeline_is_monotonic():
    _, _, report = fuzz(ContractConfig(seed=3, maze_depth=3))
    counts = [c for _, c in report.coverage_timeline]
    assert counts == sorted(counts)
    times = [t for t, _ in report.coverage_timeline]
    assert times == sorted(times)


def test_feedback_increases_coverage():
    config = ContractConfig(seed=4, maze_depth=4)
    _, _, with_feedback = fuzz(config, timeout_ms=30_000)
    _, _, without = fuzz(config, timeout_ms=30_000, feedback=False)
    assert with_feedback.adaptive_seeds > 0
    assert len(with_feedback.covered) > len(without.covered)


def test_transaction_dependency_resolved_via_dbg():
    # db_dependency=True means the eosponser asserts on a table only
    # init writes; the DBG must schedule init so transfer progresses.
    config = ContractConfig(seed=5, db_dependency=True,
                            reward_scheme="inline")
    _, target, report = fuzz(config, timeout_ms=30_000)
    deep = [o for o in report.observations
            if o.action_name == "transfer" and o.success
            and any(c.api == "send_inline" for c in o.record.host_calls)]
    assert deep, "transfer never got past the db-dependency assert"


def test_adaptive_seeds_solve_verification_guards():
    from repro.benchgen import inject_verification, VerificationSpec
    config = ContractConfig(seed=6, reward_scheme="inline")
    generated = generate_contract(config)
    spec = VerificationSpec(amount=31_415_926)
    module = inject_verification(generated.module, spec)
    chain = setup_chain()
    target = deploy_target(chain, "victim", module, generated.abi)
    fuzzer = WasaiFuzzer(chain, target, rng=random.Random(7),
                         timeout_ms=30_000)
    report = fuzzer.run()
    passing = [o for o in report.observations
               if o.action_name == "transfer" and o.success
               and o.payload_kind == "legit"]
    assert passing, "the solver should synthesise the exact quantity"
    amounts = {o.executed_params[2].amount for o in passing}
    assert 31_415_926 in amounts


def test_solver_budget_limits_feedback():
    config = ContractConfig(seed=8, maze_depth=3)
    chain = setup_chain()
    generated = generate_contract(config)
    target = deploy_target(chain, "victim", generated.module,
                           generated.abi)
    fuzzer = WasaiFuzzer(chain, target, rng=random.Random(9),
                         timeout_ms=15_000, smt_max_conflicts=1)
    report = fuzzer.run()  # must not crash with a tiny budget
    assert report.iterations > 0


def test_report_observations_of_filters():
    _, _, report = fuzz(ContractConfig(seed=10))
    legit = report.observations_of("legit")
    assert all(o.payload_kind == "legit" for o in legit)


def test_scan_integrates_with_fuzzer():
    generated, target, report = fuzz(
        ContractConfig(seed=12, fake_eos_guard=False))
    result = scan_report(report, target)
    assert result.detected("fake_eos")
    assert generated.ground_truth["fake_eos"]

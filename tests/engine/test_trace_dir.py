"""Test the offline trace-file redirect inside the fuzzer (§3.3.1)."""

import random

from repro.benchgen import ContractConfig, generate_contract
from repro.engine import WasaiFuzzer, deploy_target, setup_chain
from repro.scanner import scan_report


def test_fuzzer_with_offline_traces(tmp_path):
    config = ContractConfig(seed=41, fake_eos_guard=False)
    generated = generate_contract(config)
    chain = setup_chain()
    target = deploy_target(chain, "victim", generated.module,
                           generated.abi)
    fuzzer = WasaiFuzzer(chain, target, rng=random.Random(1),
                         timeout_ms=8_000, trace_dir=tmp_path)
    report = fuzzer.run()
    trace_files = list(tmp_path.glob("trace-*.jsonl"))
    assert trace_files, "each observation should flush an offline file"
    assert len(trace_files) == len(report.observations)
    # Detection works identically through the offline path.
    assert scan_report(report, target).detected("fake_eos")

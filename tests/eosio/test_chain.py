"""Integration tests for the local blockchain and eosio.token."""

import pytest

from repro.eosio import (Action, ApplyContext, Asset, Chain, Encoder, N,
                         NativeContract, TokenContract, deploy_token,
                         issue_to, token_balance)


@pytest.fixture
def chain():
    chain = Chain()
    deploy_token(chain, "eosio.token")
    issue_to(chain, "eosio.token", "alice", "100.0000 EOS")
    chain.create_account("bob")
    return chain


def transfer_data(from_, to, quantity, memo=""):
    return (Encoder().name(from_).name(to)
            .asset(Asset.from_string(quantity)).string(memo).bytes())


def test_issue_creates_balance(chain):
    assert token_balance(chain, "eosio.token", "alice") \
        == Asset.from_string("100.0000 EOS")


def test_transfer_moves_funds(chain):
    result = chain.push_action("eosio.token", "transfer", ["alice"],
                               transfer_data("alice", "bob", "25.0000 EOS"))
    assert result.success, result.error
    assert token_balance(chain, "eosio.token", "alice") \
        == Asset.from_string("75.0000 EOS")
    assert token_balance(chain, "eosio.token", "bob") \
        == Asset.from_string("25.0000 EOS")


def test_transfer_requires_authorization(chain):
    result = chain.push_action("eosio.token", "transfer", ["bob"],
                               transfer_data("alice", "bob", "1.0000 EOS"))
    assert not result.success
    assert "MissingAuthorization" in result.error
    # Nothing moved.
    assert token_balance(chain, "eosio.token", "alice") \
        == Asset.from_string("100.0000 EOS")


def test_overdrawn_transfer_reverts(chain):
    result = chain.push_action("eosio.token", "transfer", ["alice"],
                               transfer_data("alice", "bob", "999.0000 EOS"))
    assert not result.success
    assert "overdrawn" in result.error


def test_transfer_to_missing_account_fails(chain):
    result = chain.push_action("eosio.token", "transfer", ["alice"],
                               transfer_data("alice", "nobody", "1.0000 EOS"))
    assert not result.success


def test_notifications_reach_payer_and_payee(chain):
    result = chain.push_action("eosio.token", "transfer", ["alice"],
                               transfer_data("alice", "bob", "1.0000 EOS"))
    receivers = [(r.receiver, r.is_notification) for r in result.records]
    # token executes, then alice and bob are notified (no contracts
    # deployed there, so only the token's record appears).
    assert receivers[0] == (N("eosio.token"), False)


class RecordingContract(NativeContract):
    """Remembers every apply() it receives."""

    def __init__(self):
        self.seen = []

    def apply(self, chain, ctx):
        self.seen.append((ctx.receiver, ctx.code, ctx.action_name,
                          ctx.is_notification))


def test_notification_preserves_code(chain):
    listener = RecordingContract()
    chain.set_contract("bob", listener)
    chain.push_action("eosio.token", "transfer", ["alice"],
                      transfer_data("alice", "bob", "1.0000 EOS"))
    assert listener.seen == [
        (N("bob"), N("eosio.token"), N("transfer"), True)]


class ForwardingContract(NativeContract):
    """The fake.notif agent: forwards token notifications (§2.3.2)."""

    def __init__(self, victim):
        self.victim = victim

    def apply(self, chain, ctx):
        if ctx.code == N("eosio.token") and ctx.is_notification:
            ctx.add_recipient(self.victim)


def test_forwarded_notification_keeps_original_code(chain):
    victim = RecordingContract()
    chain.set_contract("victim", victim)
    chain.set_contract("fake.notif", ForwardingContract(N("victim")))
    issue_to(chain, "eosio.token", "attacker", "10.0000 EOS")
    chain.push_action("eosio.token", "transfer", ["attacker"],
                      transfer_data("attacker", "fake.notif", "1.0000 EOS"))
    # The victim sees code == eosio.token although it received no EOS.
    assert victim.seen == [
        (N("victim"), N("eosio.token"), N("transfer"), True)]
    assert token_balance(chain, "eosio.token", "victim").amount == 0


class InlineRewarder(NativeContract):
    """Sends an inline token transfer when poked (Rollback surface)."""

    def apply(self, chain, ctx):
        if ctx.action_name != N("poke") or ctx.receiver != ctx.code:
            return
        ctx.add_inline_action(Action(
            "eosio.token", "transfer", [ctx.receiver],
            transfer_data("rewarder", "bob", "5.0000 EOS")))


def test_inline_action_executes_in_same_transaction(chain):
    chain.set_contract("rewarder", InlineRewarder())
    issue_to(chain, "eosio.token", "rewarder", "10.0000 EOS")
    result = chain.push_action("rewarder", "poke", ["bob"], b"")
    assert result.success, result.error
    assert token_balance(chain, "eosio.token", "bob") \
        == Asset.from_string("5.0000 EOS")


class RevertingAttacker(NativeContract):
    """Sends an inline transfer, then asserts false: everything must
    roll back (the Rollback exploit shape of Listing 4)."""

    def apply(self, chain, ctx):
        from repro.eosio.errors import AssertionFailure
        if ctx.action_name != N("poke") or ctx.receiver != ctx.code:
            return
        ctx.add_inline_action(Action(
            "eosio.token", "transfer", [ctx.receiver],
            transfer_data("attacker", "bob", "5.0000 EOS")))
        raise AssertionFailure("revert to dodge the loss")


def test_failed_transaction_rolls_back_inline_effects(chain):
    chain.set_contract("attacker", RevertingAttacker())
    issue_to(chain, "eosio.token", "attacker", "10.0000 EOS")
    result = chain.push_action("attacker", "poke", ["bob"], b"")
    assert not result.success
    assert token_balance(chain, "eosio.token", "bob").amount == 0
    assert token_balance(chain, "eosio.token", "attacker") \
        == Asset.from_string("10.0000 EOS")


class DeferredRewarder(NativeContract):
    """Schedules the reward as a deferred action (the paper's patch)."""

    def apply(self, chain, ctx):
        from repro.eosio.errors import AssertionFailure
        if ctx.action_name != N("poke") or ctx.receiver != ctx.code:
            return
        ctx.add_deferred_action(Action(
            "eosio.token", "transfer", [ctx.receiver],
            transfer_data("rewarder", "bob", "5.0000 EOS")))


def test_deferred_action_runs_as_separate_transaction(chain):
    chain.set_contract("rewarder", DeferredRewarder())
    issue_to(chain, "eosio.token", "rewarder", "10.0000 EOS")
    result = chain.push_action("rewarder", "poke", ["bob"], b"")
    assert result.success
    assert len(result.deferred) == 1
    assert result.deferred[0].success
    assert token_balance(chain, "eosio.token", "bob") \
        == Asset.from_string("5.0000 EOS")


def test_inline_action_needs_senders_authority(chain):
    class Impersonator(NativeContract):
        def apply(self, chain_, ctx):
            if ctx.receiver != ctx.code:
                return
            # Tries to move alice's funds without her authority.
            ctx.add_inline_action(Action(
                "eosio.token", "transfer", [N("alice")],
                transfer_data("alice", "bob", "1.0000 EOS")))

    chain.set_contract("imposter", Impersonator())
    result = chain.push_action("imposter", "poke", ["bob"], b"")
    assert not result.success
    assert token_balance(chain, "eosio.token", "alice") \
        == Asset.from_string("100.0000 EOS")


def test_unknown_account_fails(chain):
    result = chain.push_action("ghost", "noop", [], b"")
    assert not result.success
    assert "UnknownAccount" in result.error


def test_action_pack_roundtrip():
    from repro.eosio.host import _decode_packed_action
    action = Action("eosio.token", "transfer", ["alice"],
                    transfer_data("alice", "bob", "1.0000 EOS"))
    decoded = _decode_packed_action(action.pack())
    assert decoded.account == action.account
    assert decoded.name == action.name
    assert decoded.authorization == action.authorization
    assert decoded.data == action.data


def test_fake_token_with_same_symbol(chain):
    """An attacker-deployed token can mint 'EOS' under its own code."""
    deploy_token(chain, "fake.token")
    issue_to(chain, "fake.token", "attacker", "1000000.0000 EOS")
    assert token_balance(chain, "fake.token", "attacker") \
        == Asset.from_string("1000000.0000 EOS")
    # Official EOS balances are untouched.
    assert token_balance(chain, "eosio.token", "attacker").amount == 0

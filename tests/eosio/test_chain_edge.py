"""Edge-case tests for transaction semantics."""

import pytest

from repro.eosio import (Action, Asset, Chain, Encoder, N, NativeContract,
                         deploy_token, issue_to, token_balance)
from repro.eosio.errors import AssertionFailure


def transfer_data(from_, to, quantity, memo=""):
    return (Encoder().name(from_).name(to)
            .asset(Asset.from_string(quantity)).string(memo).bytes())


@pytest.fixture
def chain():
    chain = Chain()
    deploy_token(chain, "eosio.token")
    issue_to(chain, "eosio.token", "alice", "100.0000 EOS")
    chain.create_account("bob")
    return chain


class Bomb(NativeContract):
    """Fails on every apply."""

    def apply(self, chain, ctx):
        raise AssertionFailure("bomb")


class DeferredBomb(NativeContract):
    """Schedules a deferred action that will fail."""

    def apply(self, chain, ctx):
        if ctx.receiver != ctx.code:
            return
        ctx.add_deferred_action(Action("bomb", "explode",
                                       [ctx.receiver], b""))


def test_deferred_failure_does_not_revert_parent(chain):
    """EOSIO semantics: the sender cannot revert a deferred action,
    and a deferred failure does not undo the original transaction."""
    chain.set_contract("bomb", Bomb())
    chain.set_contract("scheduler", DeferredBomb())
    result = chain.push_action("scheduler", "go", ["alice"], b"")
    assert result.success                      # parent committed
    assert len(result.deferred) == 1
    assert not result.deferred[0].success      # deferred bomb failed


def test_failing_notification_reverts_whole_transaction(chain):
    """A notified contract's failure poisons the entire transaction
    (the mechanism making Fake Notif detection observable)."""
    chain.set_contract("bob", Bomb())
    result = chain.push_action(
        "eosio.token", "transfer", ["alice"],
        transfer_data("alice", "bob", "1.0000 EOS"))
    assert not result.success
    assert token_balance(chain, "eosio.token", "alice") \
        == Asset.from_string("100.0000 EOS")


class SelfForwarder(NativeContract):
    """Requests itself as a recipient: must not loop."""

    def apply(self, chain, ctx):
        ctx.add_recipient(ctx.receiver)


def test_duplicate_notifications_suppressed(chain):
    chain.set_contract("bob", SelfForwarder())
    result = chain.push_action(
        "eosio.token", "transfer", ["alice"],
        transfer_data("alice", "bob", "1.0000 EOS"))
    assert result.success
    bob_records = [r for r in result.records if r.receiver == N("bob")]
    assert len(bob_records) == 1


class InfiniteInline(NativeContract):
    """Issues an inline action to itself forever."""

    def apply(self, chain, ctx):
        if ctx.receiver == ctx.code:
            ctx.add_inline_action(Action(ctx.receiver, "again",
                                         [ctx.receiver], b""))


def test_inline_depth_limit(chain):
    chain.set_contract("looper", InfiniteInline())
    result = chain.push_action("looper", "go", ["alice"], b"")
    assert not result.success
    assert "depth" in result.error


def test_failed_action_record_preserves_trace_prefix(chain):
    """The record of a reverted apply keeps everything up to the
    failure — the property WASAI's feedback on failed asserts needs."""
    chain.set_contract("bomb", Bomb())
    result = chain.push_action("bomb", "go", ["alice"], b"")
    assert not result.success
    record = result.records[-1]
    assert record.error is not None
    assert "bomb" in record.error


def test_transaction_log_grows(chain):
    before = len(chain.transaction_log)
    chain.push_action("eosio.token", "transfer", ["alice"],
                      transfer_data("alice", "bob", "1.0000 EOS"))
    assert len(chain.transaction_log) == before + 1


def test_multi_action_transaction_atomicity(chain):
    """Two actions in one transaction: if the second fails, the first
    is rolled back too."""
    actions = [
        Action("eosio.token", "transfer", ["alice"],
               transfer_data("alice", "bob", "1.0000 EOS")),
        Action("eosio.token", "transfer", ["alice"],
               transfer_data("alice", "bob", "9999.0000 EOS")),  # overdrawn
    ]
    result = chain.push_transaction(actions)
    assert not result.success
    assert token_balance(chain, "eosio.token", "bob").amount == 0


def test_deferred_actions_see_committed_state(chain):
    """Deferred actions run after the parent commits, against the
    updated database."""
    class DeferredReader(NativeContract):
        observed = None

        def apply(self, contract_chain, ctx):
            if ctx.action_name == N("later"):
                DeferredReader.observed = token_balance(
                    contract_chain, "eosio.token", "bob")
            elif ctx.receiver == ctx.code:
                data = transfer_data("alice", "bob", "2.0000 EOS")
                ctx.add_inline_action(Action("eosio.token", "transfer",
                                             [N("alice")], data))
                ctx.add_deferred_action(Action(ctx.receiver, "later",
                                               [ctx.receiver], b""))

    chain.set_contract("mixer", DeferredReader())
    result = chain.push_action("mixer", "go", ["alice"], b"")
    assert result.success
    assert DeferredReader.observed == Asset.from_string("2.0000 EOS")

"""Property: token conservation across arbitrary transaction mixes.

Whatever sequence of (possibly failing) transfers, payments to
contracts, inline rewards and reverted transactions executes, the sum
of all EOS balances must equal the issued supply.  This is the
chain-level invariant that makes the exploit demonstrations meaningful
(stolen funds come from the victim, never from thin air).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchgen import ContractConfig, generate_contract
from repro.engine.deploy import deploy_target, setup_chain
from repro.eosio import Asset, Encoder, N, deploy_token, issue_to
from repro.eosio.name import Name
from repro.eosio.token import _symbol_key
from repro.eosio.asset import EOS_SYMBOL
from repro.eosio.serialize import Decoder


def total_eos(chain) -> int:
    """Sum every balance row of the official token."""
    code = N("eosio.token")
    total = 0
    key = _symbol_key(EOS_SYMBOL)
    for (c, scope, table), rows in chain.db._tables.items():
        if c != code or table != N("accounts"):
            continue
        for row_key, row in rows.items():
            if row_key == key:
                total += Decoder(row.data).asset().amount
    return total


def transfer_data(from_, to, amount, memo=""):
    return (Encoder().name(from_).name(to)
            .asset(Asset(amount)).string(memo).bytes())


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 10_000), steps=st.integers(5, 25))
def test_property_supply_conserved_under_random_traffic(seed, steps):
    rng = random.Random(seed)
    chain = setup_chain()
    accounts = ["player", "attacker", "bob", "carol", "dave"]
    for account in accounts:
        chain.create_account(account)
    issue_to(chain, "eosio.token", "carol", "50.0000 EOS")
    supply = total_eos(chain)
    for _ in range(steps):
        frm = rng.choice(accounts)
        to = rng.choice(accounts + ["ghost"])  # sometimes invalid
        amount = rng.choice([0, 1, 10_000,
                             rng.randrange(0, 10_000_000_000)])
        auth = frm if rng.random() < 0.8 else rng.choice(accounts)
        chain.push_action("eosio.token", "transfer", [auth],
                          transfer_data(frm, to, amount))
        assert total_eos(chain) == supply
    assert total_eos(chain) == supply


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 1000))
def test_property_supply_conserved_with_rewarding_contract(seed):
    """Same invariant with a generated contract issuing inline rewards
    (including reverted and trapping executions)."""
    rng = random.Random(seed)
    chain = setup_chain()
    generated = generate_contract(ContractConfig(
        seed=seed, reward_scheme="inline", fake_eos_guard=False,
        maze_depth=1))
    deploy_target(chain, "victim", generated.module, generated.abi)
    issue_to(chain, "eosio.token", "victim", "1000.0000 EOS")
    supply = total_eos(chain)
    for _ in range(10):
        amount = rng.randrange(1, 10_000_000)
        memo = rng.choice(["", "x", "action:buy", "zzzz"])
        chain.push_action("eosio.token", "transfer", ["player"],
                          transfer_data("player", "victim", amount,
                                        memo))
        assert total_eos(chain) == supply


def test_issue_increases_supply_exactly():
    chain = setup_chain()
    before = total_eos(chain)
    issue_to(chain, "eosio.token", "bob", "7.5000 EOS")
    assert total_eos(chain) == before + 75_000

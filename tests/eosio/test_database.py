"""Tests for the key-value database substrate."""

import pytest

from repro.eosio.database import Database, DbOperation


CODE, SCOPE, TABLE = 1, 2, 3


def test_store_and_find():
    db = Database()
    db.store(CODE, SCOPE, TABLE, payer=9, key=7, data=b"hello")
    iterator = db.find(CODE, SCOPE, TABLE, 7)
    assert iterator >= 0
    assert db.get(iterator) == b"hello"


def test_find_missing_returns_minus_one():
    db = Database()
    assert db.find(CODE, SCOPE, TABLE, 42) == -1


def test_duplicate_key_rejected():
    db = Database()
    db.store(CODE, SCOPE, TABLE, 0, 7, b"a")
    with pytest.raises(ValueError):
        db.store(CODE, SCOPE, TABLE, 0, 7, b"b")


def test_update_and_remove():
    db = Database()
    iterator = db.store(CODE, SCOPE, TABLE, 0, 7, b"a")
    db.update(iterator, 0, b"bb")
    assert db.get(iterator) == b"bb"
    db.remove(iterator)
    assert db.find(CODE, SCOPE, TABLE, 7) == -1
    with pytest.raises(KeyError):
        db.get(iterator)


def test_iteration_order():
    db = Database()
    for key in (30, 10, 20):
        db.store(CODE, SCOPE, TABLE, 0, key, str(key).encode())
    iterator = db.find(CODE, SCOPE, TABLE, 10)
    nxt, key = db.next(iterator)
    assert key == 20
    nxt2, key2 = db.next(nxt)
    assert key2 == 30
    assert db.next(nxt2) == (-1, 0)


def test_lowerbound():
    db = Database()
    for key in (10, 20, 30):
        db.store(CODE, SCOPE, TABLE, 0, key, b"x")
    iterator, key = db.lowerbound(CODE, SCOPE, TABLE, 15)
    assert key == 20
    assert db.lowerbound(CODE, SCOPE, TABLE, 31) == (-1, 0)


def test_scopes_are_isolated():
    db = Database()
    db.store(CODE, 1, TABLE, 0, 7, b"one")
    db.store(CODE, 2, TABLE, 0, 7, b"two")
    assert db.get_row(CODE, 1, TABLE, 7) == b"one"
    assert db.get_row(CODE, 2, TABLE, 7) == b"two"


def test_journal_records_reads_and_writes():
    db = Database()
    db.store(CODE, SCOPE, TABLE, 0, 7, b"x")
    db.find(CODE, SCOPE, TABLE, 7)
    ops = db.drain_journal()
    assert DbOperation("write", CODE, SCOPE, TABLE,
                       pkey=7, before=None, after=b"x") in ops
    assert DbOperation("read", CODE, SCOPE, TABLE) in ops
    assert db.drain_journal() == []


def test_journal_write_images():
    db = Database()
    iterator = db.store(CODE, SCOPE, TABLE, 0, 7, b"a")
    db.update(iterator, 0, b"bb")
    db.remove(iterator)
    writes = [op for op in db.drain_journal() if op.kind == "write"]
    assert [(op.pkey, op.before, op.after) for op in writes] == [
        (7, None, b"a"), (7, b"a", b"bb"), (7, b"bb", None)]


def test_export_state_plain_bytes():
    db = Database()
    db.store(CODE, SCOPE, TABLE, 0, 7, b"x")
    db.set_row(CODE, 5, TABLE, 0, 9, b"y")
    assert db.export_state() == {
        (CODE, SCOPE, TABLE): {7: b"x"},
        (CODE, 5, TABLE): {9: b"y"},
    }


def test_snapshot_restore():
    db = Database()
    db.store(CODE, SCOPE, TABLE, 0, 1, b"before")
    snap = db.snapshot()
    iterator = db.find(CODE, SCOPE, TABLE, 1)
    db.update(iterator, 0, b"after")
    db.store(CODE, SCOPE, TABLE, 0, 2, b"new")
    db.restore(snap)
    assert db.get_row(CODE, SCOPE, TABLE, 1) == b"before"
    assert db.get_row(CODE, SCOPE, TABLE, 2) is None


def test_snapshot_is_deep():
    db = Database()
    db.store(CODE, SCOPE, TABLE, 0, 1, b"v1")
    snap = db.snapshot()
    iterator = db.find(CODE, SCOPE, TABLE, 1)
    db.update(iterator, 0, b"v2")
    # The snapshot must not see the mutation.
    assert snap[(CODE, SCOPE, TABLE)][1].data == b"v1"

"""Wasm-level tests of the EOSVM library APIs (§2.2).

Each test deploys a tiny hand-built contract that exercises one host
API through actual Wasm code, verifying the interface the generated
benchmark contracts rely on.
"""

import pytest

from repro.eosio import Chain, N, WasmContract, deploy_token, issue_to
from repro.eosio.host import HOST_API_SIGNATURES
from repro.wasm import ModuleBuilder


def build_contract(emit_body, locals_=(), extra_imports=()):
    """A contract whose apply() runs ``emit_body``."""
    builder = ModuleBuilder()
    builder.add_memory(1)
    imports = {}
    for api in ("eosio_assert", "prints", "printi", *extra_imports):
        params, results = HOST_API_SIGNATURES[api]
        imports[api] = builder.import_function(
            "env", api, [t.name for t in params],
            [r.name for r in results])
    f = builder.function("apply", params=["i64", "i64", "i64"],
                         locals_=list(locals_))
    emit_body(f, imports)
    builder.export_function("apply", f)
    return builder.build()


def deploy_and_push(module, action="go", auth=("alice",), data=b""):
    chain = Chain()
    chain.create_account("alice")
    chain.set_contract("box", WasmContract(module))
    result = chain.push_action("box", action, list(auth), data)
    return chain, result


def record_of(result, account="box"):
    return [r for r in result.records if r.receiver == N(account)][0]


def test_current_receiver():
    def body(f, imports):
        f.emit("call", f._mb.import_function(
            "env", "current_receiver", [], ["i64"]))
        f.emit("call", imports["printi"])
    module = build_contract(body, extra_imports=("current_receiver",))
    _, result = deploy_and_push(module)
    assert result.success
    assert record_of(result).console == [str(N("box"))]


def test_prints_reads_nul_terminated():
    def body(f, imports):
        f.i32_const(0)
        f.emit("call", imports["prints"])
    module = build_contract(body)
    module.data_segments.append(__import__(
        "repro.wasm.module", fromlist=["DataSegment"]).DataSegment(
            0, [__import__("repro.wasm.opcodes",
                           fromlist=["Instr"]).Instr("i32.const", 0)],
            b"hello\x00world"))
    _, result = deploy_and_push(module)
    assert record_of(result).console == ["hello"]


def test_eosio_assert_message_propagates():
    def body(f, imports):
        f.i32_const(0)   # condition false
        f.i32_const(64)  # message pointer
        f.emit("call", imports["eosio_assert"])
    module = build_contract(body)
    from repro.wasm.module import DataSegment
    from repro.wasm.opcodes import Instr
    module.data_segments.append(
        DataSegment(0, [Instr("i32.const", 64)], b"boom\x00"))
    _, result = deploy_and_push(module)
    assert not result.success
    assert "boom" in result.error
    assert "boom" in record_of(result).error


def test_has_auth_reflects_authorization():
    def body(f, imports):
        has_auth = f._mb.import_function("env", "has_auth", ["i64"],
                                         ["i32"])
        f.i64_const(N("alice"))
        f.emit("call", has_auth)
        f.emit("i64.extend_i32_u")
        f.emit("call", imports["printi"])
        f.i64_const(N("bob"))
        f.emit("call", has_auth)
        f.emit("i64.extend_i32_u")
        f.emit("call", imports["printi"])
    module = build_contract(body, extra_imports=("has_auth",))
    _, result = deploy_and_push(module, auth=("alice",))
    assert record_of(result).console == ["1", "0"]


def test_require_auth_reverts_without_authority():
    def body(f, imports):
        require_auth = f._mb.import_function("env", "require_auth",
                                             ["i64"], [])
        f.i64_const(N("bob"))
        f.emit("call", require_auth)
    module = build_contract(body, extra_imports=("require_auth",))
    _, result = deploy_and_push(module, auth=("alice",))
    assert not result.success
    assert "MissingAuthorization" in result.error


def test_db_store_find_get_update_remove_cycle():
    def body(f, imports):
        db_store = f._mb.import_function(
            "env", "db_store_i64",
            ["i64", "i64", "i64", "i64", "i32", "i32"], ["i32"])
        db_find = f._mb.import_function(
            "env", "db_find_i64", ["i64", "i64", "i64", "i64"], ["i32"])
        db_get = f._mb.import_function(
            "env", "db_get_i64", ["i32", "i32", "i32"], ["i32"])
        iterator = f.add_local("i32")
        # store(scope=self, table, payer=self, id=1, ptr=0, len=4)
        f.i32_const(0).i32_const(0xCAFE).emit("i32.store", 2, 0)
        f.i64_const(N("box")).i64_const(N("tbl")).i64_const(N("box"))
        f.i64_const(1).i32_const(0).i32_const(4)
        f.emit("call", db_store)
        f.emit("drop")
        # find + get back into memory at 16
        f.i64_const(N("box")).i64_const(N("box")).i64_const(N("tbl"))
        f.i64_const(1)
        f.emit("call", db_find)
        f.local_set(iterator)
        f.local_get(iterator).i32_const(16).i32_const(4)
        f.emit("call", db_get)
        f.emit("drop")
        f.i32_const(16).emit("i32.load", 2, 0)
        f.emit("i64.extend_i32_u")
        f.emit("call", imports["printi"])
    module = build_contract(body, locals_=[],
                            extra_imports=())
    chain, result = deploy_and_push(module)
    assert result.success, result.error
    assert record_of(result).console == [str(0xCAFE)]
    # The row is visible in the database directly.
    assert chain.db.get_row(N("box"), N("box"), N("tbl"), 1) \
        == (0xCAFE).to_bytes(4, "little")


def test_tapos_apis_return_chain_state():
    def body(f, imports):
        num = f._mb.import_function("env", "tapos_block_num", [],
                                    ["i32"])
        f.emit("call", num)
        f.emit("i64.extend_i32_u")
        f.emit("call", imports["printi"])
    module = build_contract(body, extra_imports=("tapos_block_num",))
    chain, result = deploy_and_push(module)
    assert record_of(result).console == [str(chain.tapos_block_num)]


def test_memcpy_shim():
    def body(f, imports):
        memcpy = f._mb.import_function("env", "memcpy",
                                       ["i32", "i32", "i32"], ["i32"])
        f.i32_const(0).i32_const(0xAABBCCDD).emit("i32.store", 2, 0)
        f.i32_const(32).i32_const(0).i32_const(4)
        f.emit("call", memcpy)
        f.emit("drop")
        f.i32_const(32).emit("i32.load", 2, 0)
        f.emit("i64.extend_i32_u")
        f.emit("call", imports["printi"])
    module = build_contract(body)
    _, result = deploy_and_push(module)
    assert record_of(result).console == [str(0xAABBCCDD)]


def test_read_action_data_roundtrip():
    def body(f, imports):
        size = f._mb.import_function("env", "action_data_size", [],
                                     ["i32"])
        read = f._mb.import_function("env", "read_action_data",
                                     ["i32", "i32"], ["i32"])
        f.i32_const(0)
        f.emit("call", size)
        f.emit("call", read)
        f.emit("drop")
        f.i32_const(0).emit("i64.load", 3, 0)
        f.emit("call", imports["printi"])
    module = build_contract(body)
    _, result = deploy_and_push(
        module, data=(0x1122334455667788).to_bytes(8, "little"))
    assert record_of(result).console == [str(0x1122334455667788)]

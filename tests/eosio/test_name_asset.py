"""Tests for the name and asset codecs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eosio import Asset, EOS_SYMBOL, N, Name, Symbol
from repro.eosio.name import name_to_string, string_to_name

name_strategy = st.text(alphabet="abcdefghijklmnopqrstuvwxyz12345.",
                        min_size=1, max_size=12).filter(
    lambda s: not s.endswith("."))


def test_known_name_encodings():
    # Reference values from the EOSIO SDK.
    assert string_to_name("eosio") == 6138663577826885632
    assert string_to_name("eosio.token") == 6138663591592764928
    assert string_to_name("transfer") == 14829575313431724032


def test_name_roundtrip_basics():
    for text in ("eosio", "eosio.token", "transfer", "a", "zzzzzzzzzzzz",
                 "alice", "bob", "eosbet", "fake.token"):
        assert name_to_string(string_to_name(text)) == text


@given(name_strategy)
@settings(max_examples=150, deadline=None)
def test_property_name_roundtrip(text):
    assert name_to_string(string_to_name(text)) == text


def test_name_too_long_rejected():
    with pytest.raises(ValueError):
        string_to_name("abcdefghijklmn")


def test_name_invalid_char_rejected():
    with pytest.raises(ValueError):
        string_to_name("UPPER")
    with pytest.raises(ValueError):
        string_to_name("has space")


def test_name_wrapper_equality():
    assert Name("eosio") == Name(string_to_name("eosio"))
    assert Name("eosio") == "eosio"
    assert Name("eosio") == string_to_name("eosio")
    assert N("transfer") == string_to_name("transfer")


def test_name_hashable():
    assert len({Name("alice"), Name("alice"), Name("bob")}) == 2


# -- symbols and assets -------------------------------------------------------

def test_symbol_raw_encoding():
    assert EOS_SYMBOL.raw == 0x534F4504  # 'S','O','E' above precision 4


def test_symbol_roundtrip():
    for precision, code in ((4, "EOS"), (0, "X"), (8, "LONGEST")):
        symbol = Symbol(precision, code)
        assert Symbol.from_raw(symbol.raw) == symbol


def test_symbol_validation():
    with pytest.raises(ValueError):
        Symbol(4, "eos")  # lowercase
    with pytest.raises(ValueError):
        Symbol(4, "TOOLONGGG")
    with pytest.raises(ValueError):
        Symbol(19, "EOS")


def test_asset_from_string():
    asset = Asset.from_string("10.0000 EOS")
    assert asset.amount == 100000
    assert asset.symbol == EOS_SYMBOL
    assert str(asset) == "10.0000 EOS"


def test_asset_negative():
    asset = Asset.from_string("-1.5000 EOS")
    assert asset.amount == -15000
    assert str(asset) == "-1.5000 EOS"


def test_asset_zero_precision():
    asset = Asset.from_string("7 TOK")
    assert asset.amount == 7
    assert asset.symbol.precision == 0
    assert str(asset) == "7 TOK"


def test_asset_arithmetic():
    a = Asset.from_string("1.0000 EOS")
    b = Asset.from_string("0.2500 EOS")
    assert (a + b) == Asset.from_string("1.2500 EOS")
    assert (a - b) == Asset.from_string("0.7500 EOS")
    assert b < a
    assert b <= a


def test_asset_symbol_mismatch_rejected():
    with pytest.raises(ValueError):
        Asset.from_string("1.0000 EOS") + Asset.from_string("1.0000 SYS")


@given(st.integers(0, 10**10), st.integers(0, 6))
@settings(max_examples=100, deadline=None)
def test_property_asset_string_roundtrip(amount, precision):
    asset = Asset(amount, Symbol(precision, "EOS"))
    assert Asset.from_string(str(asset)) == asset

"""Tests for the byte-stream serialisation and the ABI model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eosio import (Abi, Asset, Decoder, Encoder, Name, Symbol,
                         TRANSFER_SIGNATURE, pack_values, unpack_values)


def test_fixed_width_ints():
    data = Encoder().uint(0xAABB, 2).int(-1, 4).bytes()
    decoder = Decoder(data)
    assert decoder.uint(2) == 0xAABB
    assert decoder.int(4) == -1


def test_varuint32_boundaries():
    for value in (0, 127, 128, 16383, 16384, 2**32 - 1):
        data = Encoder().varuint32(value).bytes()
        assert Decoder(data).varuint32() == value


def test_varuint32_rejects_negative():
    with pytest.raises(ValueError):
        Encoder().varuint32(-1)


def test_name_roundtrip():
    data = Encoder().name("eosio.token").bytes()
    assert len(data) == 8
    assert Decoder(data).name() == Name("eosio.token")


def test_asset_roundtrip():
    asset = Asset.from_string("12.3456 EOS")
    data = Encoder().asset(asset).bytes()
    assert len(data) == 16
    assert Decoder(data).asset() == asset


def test_string_length_prefix():
    data = Encoder().string("hey").bytes()
    assert data[0] == 3
    assert Decoder(data).string() == "hey"


def test_transfer_wire_format():
    """The canonical transfer layout the dispatcher deserialises."""
    data = pack_values(["name", "name", "asset", "string"],
                       [Name("alice"), Name("bob"),
                        Asset.from_string("1.0000 EOS"), "memo!"])
    assert len(data) == 8 + 8 + 16 + 1 + 5
    values = unpack_values(["name", "name", "asset", "string"], data)
    assert values[0] == Name("alice")
    assert values[3] == "memo!"


def test_underflow_raises():
    with pytest.raises(ValueError):
        Decoder(b"\x01").uint(4)


@settings(max_examples=60, deadline=None)
@given(amount=st.integers(-(10**12), 10**12),
       memo=st.text(max_size=40))
def test_property_transfer_roundtrip(amount, memo):
    values = [Name("alice"), Name("bob"), Asset(amount), memo]
    types = ["name", "name", "asset", "string"]
    assert unpack_values(types, pack_values(types, values)) == values


# -- ABI ------------------------------------------------------------------------

def test_abi_from_signatures():
    abi = Abi.from_signatures({"transfer": TRANSFER_SIGNATURE})
    action = abi.action("transfer")
    assert action.param_types == ["name", "name", "asset", "string"]


def test_abi_pack_unpack():
    abi = Abi.from_signatures({"transfer": TRANSFER_SIGNATURE})
    action = abi.action("transfer")
    values = [Name("a"), Name("b"), Asset.from_string("0.0001 EOS"), ""]
    assert action.unpack(action.pack(values)) == values


def test_abi_unknown_action():
    abi = Abi.from_signatures({})
    with pytest.raises(KeyError):
        abi.action("ghost")
    assert not abi.has_action("ghost")


def test_abi_json_roundtrip():
    abi = Abi.from_signatures({
        "transfer": TRANSFER_SIGNATURE,
        "init": (("owner", "name"),),
    })
    restored = Abi.from_json(abi.to_json())
    assert restored.action_names() == ["init", "transfer"]
    assert restored.action("transfer").param_types \
        == ["name", "name", "asset", "string"]


def test_abi_rejects_unknown_type():
    with pytest.raises(ValueError):
        Abi.from_signatures({"weird": (("x", "quaternion"),)})

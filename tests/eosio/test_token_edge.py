"""Edge cases of the eosio.token system contract."""

import pytest

from repro.eosio import (Asset, Chain, Encoder, N, deploy_token, issue_to,
                         token_balance)


@pytest.fixture
def chain():
    chain = Chain()
    deploy_token(chain, "eosio.token")
    return chain


def test_duplicate_create_rejected(chain):
    data = (Encoder().name("eosio.token")
            .asset(Asset.from_string("100.0000 EOS")).bytes())
    result = chain.push_action("eosio.token", "create",
                               ["eosio.token"], data)
    assert not result.success
    assert "already exists" in result.error


def test_create_requires_contract_authority(chain):
    chain.create_account("mallory")
    data = (Encoder().name("mallory")
            .asset(Asset.from_string("1.0000 SYS")).bytes())
    result = chain.push_action("eosio.token", "create", ["mallory"],
                               data)
    assert not result.success


def test_issue_requires_issuer_authority(chain):
    chain.create_account("mallory")
    data = (Encoder().name("mallory")
            .asset(Asset.from_string("5.0000 EOS")).string("x").bytes())
    result = chain.push_action("eosio.token", "issue", ["mallory"], data)
    assert not result.success
    assert "MissingAuthorization" in result.error


def test_issue_beyond_max_supply_rejected(chain):
    chain.create_account("alice")
    data = (Encoder().name("alice")
            .asset(Asset.from_string("1000000001.0000 EOS"))
            .string("too much").bytes())
    result = chain.push_action("eosio.token", "issue",
                               ["eosio.token"], data)
    assert not result.success
    assert "exceeds available supply" in result.error


def test_issue_accumulates_supply(chain):
    issue_to(chain, "eosio.token", "alice", "600000000.0000 EOS")
    issue_to(chain, "eosio.token", "bob", "400000000.0000 EOS")
    data = (Encoder().name("alice")
            .asset(Asset.from_string("0.0001 EOS")).string("x").bytes())
    result = chain.push_action("eosio.token", "issue",
                               ["eosio.token"], data)
    assert not result.success  # supply exhausted exactly


def test_issue_of_unknown_symbol_rejected(chain):
    chain.create_account("alice")
    data = (Encoder().name("alice")
            .asset(Asset.from_string("1.0000 SYS")).string("x").bytes())
    result = chain.push_action("eosio.token", "issue",
                               ["eosio.token"], data)
    assert not result.success
    assert "does not exist" in result.error


def test_transfer_to_self_rejected(chain):
    issue_to(chain, "eosio.token", "alice", "10.0000 EOS")
    data = (Encoder().name("alice").name("alice")
            .asset(Asset.from_string("1.0000 EOS")).string("").bytes())
    result = chain.push_action("eosio.token", "transfer", ["alice"],
                               data)
    assert not result.success


def test_zero_and_negative_transfers_rejected(chain):
    issue_to(chain, "eosio.token", "alice", "10.0000 EOS")
    chain.create_account("bob")
    for amount in ("0.0000 EOS", "-1.0000 EOS"):
        data = (Encoder().name("alice").name("bob")
                .asset(Asset.from_string(amount)).string("").bytes())
        result = chain.push_action("eosio.token", "transfer", ["alice"],
                                   data)
        assert not result.success, amount


def test_token_ignores_forwarded_notifications(chain):
    """A token contract must not act when it is merely notified."""
    from repro.eosio import NativeContract

    class Forwarder(NativeContract):
        def apply(self, inner_chain, ctx):
            if ctx.receiver == ctx.code:
                ctx.add_recipient(N("eosio.token"))

    chain.set_contract("fwd", Forwarder())
    before = chain.db.snapshot()
    result = chain.push_action("fwd", "poke", ["fwd"], b"")
    assert result.success
    assert chain.db.snapshot().keys() == before.keys()


def test_two_tokens_coexist(chain):
    deploy_token(chain, "fake.token", maximum_supply="500.0000 EOS")
    issue_to(chain, "fake.token", "alice", "500.0000 EOS")
    issue_to(chain, "eosio.token", "alice", "10.0000 EOS")
    assert token_balance(chain, "fake.token", "alice") \
        == Asset.from_string("500.0000 EOS")
    assert token_balance(chain, "eosio.token", "alice") \
        == Asset.from_string("10.0000 EOS")

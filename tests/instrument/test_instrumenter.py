"""Tests for the contract-level instrumentation (C1)."""

import pytest

from repro.instrument import (BEGIN_FUNCTION, END_FUNCTION, HOOK_MODULE,
                              HookEvent, decode_raw_trace, instrument_module)
from repro.wasm import (FuncType, HostFunc, I32, I64, Instance, ModuleBuilder,
                        encode_module, parse_module, validate_module)


def build_adder():
    builder = ModuleBuilder()
    builder.add_memory(1)
    f = builder.function("add", params=["i32", "i32"], results=["i32"])
    f.local_get(0).local_get(1).emit("i32.add")
    builder.export_function("add", f)
    return builder.build()


def run_instrumented(module, export, args):
    """Instantiate an instrumented module with recording hooks."""
    instrumented, sites = instrument_module(module)
    validate_module(instrumented)
    raw: list[tuple] = []
    imports = {}
    for imp in instrumented.imports:
        if imp.module == HOOK_MODULE:
            func_type = instrumented.types[imp.desc]
            def make(name):
                return lambda inst, a: raw.append((name, tuple(a))) or []
            imports[(imp.module, imp.name)] = HostFunc(func_type,
                                                       make(imp.name))
    instance = Instance(instrumented, imports)
    results = instance.invoke(export, args)
    return results, decode_raw_trace(raw), sites


def test_instrumented_module_still_computes():
    results, events, sites = run_instrumented(build_adder(), "add", [2, 3])
    assert results == [5]


def test_instrumented_module_validates():
    instrumented, _ = instrument_module(build_adder())
    validate_module(instrumented)


def test_instrumented_module_encodes_and_parses():
    instrumented, _ = instrument_module(build_adder())
    assert parse_module(encode_module(instrumented)).functions


def test_begin_end_labels_bracket_execution():
    _, events, _ = run_instrumented(build_adder(), "add", [1, 1])
    assert events[0].kind == "begin"
    assert events[-1].kind == "end"


def test_operands_are_duplicated():
    _, events, sites = run_instrumented(build_adder(), "add", [7, 9])
    instr_events = [e for e in events if e.kind == "instr"]
    ops = [(sites[e.site_id].instr.op, e.operands) for e in instr_events]
    assert ops == [("local.get", ()), ("local.get", ()),
                   ("i32.add", (7, 9))]


def test_site_table_points_into_original_module():
    module = build_adder()
    _, events, sites = run_instrumented(module, "add", [1, 2])
    add_site = sites[[e for e in events if e.kind == "instr"][-1].site_id]
    original = module.functions[0].body[add_site.pc]
    assert original.op == "i32.add"


def test_call_gets_pre_and_post_hooks():
    builder = ModuleBuilder()
    double = builder.function("double", params=["i32"], results=["i32"])
    double.local_get(0).i32_const(2).emit("i32.mul")
    outer = builder.function("outer", params=["i32"], results=["i32"])
    outer.local_get(0)
    outer.call(double)
    builder.export_function("outer", outer)
    results, events, sites = run_instrumented(builder.build(), "outer", [21])
    assert results == [42]
    call_events = [e for e in events if e.kind == "instr"
                   and sites[e.site_id].instr.op == "call"]
    post_events = [e for e in events if e.kind == "post"]
    assert call_events[0].operands == (21,)   # call_pre: the argument
    assert post_events[0].operands == (42,)   # call_post: the return
    # The callee's begin/end labels nest between pre and post.
    begin_positions = [i for i, e in enumerate(events) if e.kind == "begin"]
    assert len(begin_positions) == 2


def test_memory_instruction_captures_concrete_address():
    builder = ModuleBuilder()
    builder.add_memory(1)
    f = builder.function("f", results=["i32"])
    f.i32_const(64).i32_const(7).emit("i32.store", 2, 0)
    f.i32_const(64).emit("i32.load", 2, 0)
    builder.export_function("f", f)
    results, events, sites = run_instrumented(builder.build(), "f", [])
    assert results == [7]
    store_event = [e for e in events if e.kind == "instr"
                   and sites[e.site_id].instr.op == "i32.store"][0]
    assert store_event.operands == (64, 7)  # address and value
    load_event = [e for e in events if e.kind == "instr"
                  and sites[e.site_id].instr.op == "i32.load"][0]
    assert load_event.operands == (64,)


def test_branch_condition_captured():
    builder = ModuleBuilder()
    f = builder.function("f", params=["i32"], results=["i32"])
    f.emit("block", None)
    f.local_get(0)
    f.emit("br_if", 0)
    f.emit("end")
    f.i32_const(5)
    builder.export_function("f", f)
    _, events, sites = run_instrumented(builder.build(), "f", [1])
    br_event = [e for e in events if e.kind == "instr"
                and sites[e.site_id].instr.op == "br_if"][0]
    assert br_event.operands == (1,)


def test_loop_iterations_fire_hooks_each_time():
    builder = ModuleBuilder()
    f = builder.function("f", params=["i32"], results=["i32"],
                         locals_=["i32"])
    f.emit("block", None)
    f.emit("loop", None)
    f.local_get(1).local_get(0).emit("i32.ge_u").emit("br_if", 1)
    f.local_get(1).i32_const(1).emit("i32.add").local_set(1)
    f.emit("br", 0)
    f.emit("end")
    f.emit("end")
    f.local_get(1)
    builder.export_function("f", f)
    results, events, sites = run_instrumented(builder.build(), "f", [3])
    assert results == [3]
    adds = [e for e in events if e.kind == "instr"
            and sites[e.site_id].instr.op == "i32.add"]
    assert len(adds) == 3
    assert [e.operands for e in adds] == [(0, 1), (1, 1), (2, 1)]


def test_mixed_type_operands_spill_correctly():
    builder = ModuleBuilder()
    builder.add_memory(1)
    f = builder.function("f", results=["i64"])
    f.i32_const(8).i64_const(0xDEADBEEF).emit("i64.store", 3, 0)
    f.i32_const(8).emit("i64.load", 3, 0)
    builder.export_function("f", f)
    results, events, sites = run_instrumented(builder.build(), "f", [])
    assert results == [0xDEADBEEF]
    store = [e for e in events if e.kind == "instr"
             and sites[e.site_id].instr.op == "i64.store"][0]
    assert store.operands == (8, 0xDEADBEEF)


def test_original_module_not_mutated():
    module = build_adder()
    before = [list(f.body) for f in module.functions]
    instrument_module(module)
    after = [list(f.body) for f in module.functions]
    assert before == after


def test_uninstrumented_imports_preserved():
    builder = ModuleBuilder()
    log = builder.import_function("env", "printi", params=["i64"])
    f = builder.function("f")
    f.i64_const(1)
    f.emit("call", log)
    builder.export_function("f", f)
    module = builder.build()
    instrumented, _ = instrument_module(module)
    env_imports = [i for i in instrumented.imports if i.module == "env"]
    assert len(env_imports) == 1
    # The call to the original import must keep index 0.
    calls = [i for i in instrumented.functions[0].body if i.op == "call"]
    # Last call in body targets printi (index 0); hook calls target
    # higher indices.
    assert any(c.args[0] == 0 for c in calls)


def test_table_entries_remapped():
    builder = ModuleBuilder()
    f = builder.function("f", results=["i32"])
    f.i32_const(3)
    builder.add_table_entry(0, f)
    builder.export_function("f", f)
    module = builder.build()
    instrumented, _ = instrument_module(module)
    hook_count = sum(1 for i in instrumented.imports
                     if i.module == HOOK_MODULE)
    assert instrumented.elements[0].func_indices == [hook_count]

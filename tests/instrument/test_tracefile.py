"""Tests for offline trace files and hook naming (§3.3.1)."""

import pytest

from repro.instrument import (BEGIN_FUNCTION, END_FUNCTION, HookEvent,
                              TraceStore, hook_func_type, parse_hook_name,
                              post_hook_name, read_trace_file,
                              trace_hook_name, write_trace_file)
from repro.wasm import F32, F64, FuncType, I32, I64


def test_hook_names():
    assert trace_hook_name([]) == "trace"
    assert trace_hook_name([I32, I64]) == "trace_i32_i64"
    assert post_hook_name([]) == "post"
    assert post_hook_name([F64]) == "post_f64"


def test_hook_name_parse_roundtrip():
    for types in ([], [I32], [I64, F32], [I32, I32, I32]):
        name = trace_hook_name(types)
        kind, parsed = parse_hook_name(name)
        assert kind == "trace"
        assert list(parsed) == types


def test_hook_func_types():
    assert hook_func_type("trace_i64") == FuncType((I32, I64), ())
    assert hook_func_type(BEGIN_FUNCTION) == FuncType((I32,), ())
    assert hook_func_type("post") == FuncType((I32,), ())


def test_unknown_hook_rejected():
    with pytest.raises(ValueError):
        parse_hook_name("mystery_i32")


def test_hook_event_decoding():
    begin = HookEvent.decode(BEGIN_FUNCTION, (7,))
    assert begin.kind == "begin"
    assert begin.func_id == 7
    instr = HookEvent.decode("trace_i32_i32", (3, 10, 20))
    assert instr.kind == "instr"
    assert instr.site_id == 3
    assert instr.operands == (10, 20)
    post = HookEvent.decode("post_i64", (5, 99))
    assert post.kind == "post"
    assert post.operands == (99,)


def test_trace_file_roundtrip(tmp_path):
    raw = [("trace_i32", (0, 42)), (BEGIN_FUNCTION, (1,)),
           (END_FUNCTION, (1,))]
    path = tmp_path / "t.jsonl"
    write_trace_file(path, raw)
    events = read_trace_file(path)
    assert [e.kind for e in events] == ["instr", "begin", "end"]
    assert events[0].operands == (42,)


def test_trace_store_per_thread_isolation(tmp_path):
    """The C1 requirement: traces from parallel executions must not
    interleave; each thread's buffer flushes to its own file."""
    store = TraceStore(tmp_path)
    store.append("thread-a", "trace", (1,))
    store.append("thread-b", "trace", (2,))
    store.append("thread-a", "trace", (3,))
    path_a = store.finalize("thread-a")
    path_b = store.finalize("thread-b")
    assert path_a != path_b
    events_a = read_trace_file(path_a)
    assert [e.site_id for e in events_a] == [1, 3]
    assert [e.site_id for e in read_trace_file(path_b)] == [2]


def test_trace_store_finalize_clears_buffer(tmp_path):
    store = TraceStore(tmp_path)
    store.append("t", "trace", (1,))
    store.finalize("t")
    assert store.pending_tokens() == []
    assert read_trace_file(store.finalize("t")) == []

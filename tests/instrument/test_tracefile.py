"""Tests for offline trace files and hook naming (§3.3.1)."""

import pytest

from repro.instrument import (BEGIN_FUNCTION, END_FUNCTION, HookEvent,
                              TraceStore, hook_func_type, load_trace_file,
                              parse_hook_name, post_hook_name,
                              read_trace_file, read_trace_ir,
                              trace_hook_name, write_trace_file,
                              write_trace_ir)
from repro.resilience import TraceCorruption
from repro.wasm import F32, F64, FuncType, I32, I64


def test_hook_names():
    assert trace_hook_name([]) == "trace"
    assert trace_hook_name([I32, I64]) == "trace_i32_i64"
    assert post_hook_name([]) == "post"
    assert post_hook_name([F64]) == "post_f64"


def test_hook_name_parse_roundtrip():
    for types in ([], [I32], [I64, F32], [I32, I32, I32]):
        name = trace_hook_name(types)
        kind, parsed = parse_hook_name(name)
        assert kind == "trace"
        assert list(parsed) == types


def test_hook_func_types():
    assert hook_func_type("trace_i64") == FuncType((I32, I64), ())
    assert hook_func_type(BEGIN_FUNCTION) == FuncType((I32,), ())
    assert hook_func_type("post") == FuncType((I32,), ())


def test_unknown_hook_rejected():
    with pytest.raises(ValueError):
        parse_hook_name("mystery_i32")


def test_hook_event_decoding():
    begin = HookEvent.decode(BEGIN_FUNCTION, (7,))
    assert begin.kind == "begin"
    assert begin.func_id == 7
    instr = HookEvent.decode("trace_i32_i32", (3, 10, 20))
    assert instr.kind == "instr"
    assert instr.site_id == 3
    assert instr.operands == (10, 20)
    post = HookEvent.decode("post_i64", (5, 99))
    assert post.kind == "post"
    assert post.operands == (99,)


def test_trace_file_roundtrip(tmp_path):
    raw = [("trace_i32", (0, 42)), (BEGIN_FUNCTION, (1,)),
           (END_FUNCTION, (1,))]
    path = tmp_path / "t.jsonl"
    write_trace_file(path, raw)
    events = read_trace_file(path)
    assert [e.kind for e in events] == ["instr", "begin", "end"]
    assert events[0].operands == (42,)


def test_trace_store_per_thread_isolation(tmp_path):
    """The C1 requirement: traces from parallel executions must not
    interleave; each thread's buffer flushes to its own file."""
    store = TraceStore(tmp_path)
    store.append("thread-a", "trace", (1,))
    store.append("thread-b", "trace", (2,))
    store.append("thread-a", "trace", (3,))
    path_a = store.finalize("thread-a")
    path_b = store.finalize("thread-b")
    assert path_a != path_b
    events_a = read_trace_file(path_a)
    assert [e.site_id for e in events_a] == [1, 3]
    assert [e.site_id for e in read_trace_file(path_b)] == [2]


def test_trace_store_finalize_clears_buffer(tmp_path):
    store = TraceStore(tmp_path)
    store.append("t", "trace", (1,))
    store.finalize("t")
    assert store.pending_tokens() == []
    assert read_trace_file(store.finalize("t")) == []


def test_write_is_atomic_no_temp_residue(tmp_path):
    """After a successful write the directory holds exactly the trace
    file — the temp staging file has been renamed away, never left."""
    path = tmp_path / "t.jsonl"
    write_trace_file(path, [("trace_i32", (0, 1))])
    write_trace_file(path, [("trace_i32", (0, 2))])  # overwrite in place
    assert [p.name for p in tmp_path.iterdir()] == ["t.jsonl"]
    assert read_trace_file(path)[0].operands == (2,)


def test_malformed_line_raises_typed_with_location(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text('["trace_i32", [0, 1]]\nnot json at all\n')
    with pytest.raises(TraceCorruption) as info:
        read_trace_file(path)
    assert info.value.path == str(path)
    assert info.value.line == 2
    assert info.value.retryable is False


def test_wellformed_json_wrong_shape_raises_typed(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text('["mystery_hook", [1]]\n')
    with pytest.raises(TraceCorruption) as info:
        read_trace_file(path)
    assert info.value.line == 1


def test_trace_ir_file_roundtrip(tmp_path):
    raw = [("trace_i32", (0, 42)), (BEGIN_FUNCTION, (1,)),
           ("post_i64", (2, -7)), (END_FUNCTION, (1,))]
    path = tmp_path / "t.tir"
    write_trace_ir(path, raw)
    events = read_trace_ir(path)
    assert [e.kind for e in events] == ["instr", "begin", "post", "end"]
    assert events[0].operands == (42,)
    assert events[2].operands == (-7,)
    # load_trace_file dispatches on extension
    loaded = load_trace_file(path)
    assert [(e.kind, e.site_id, e.func_id, e.operands) for e in loaded] \
        == [(e.kind, e.site_id, e.func_id, e.operands) for e in events]


def test_trace_ir_corruption_carries_path(tmp_path):
    path = tmp_path / "t.tir"
    write_trace_ir(path, [("trace_i32", (0, 42))])
    blob = bytearray(path.read_bytes())
    blob[-1] ^= 0xFF
    path.write_bytes(bytes(blob))
    with pytest.raises(TraceCorruption) as info:
        read_trace_ir(path)
    assert info.value.path == str(path)
    with pytest.raises(TraceCorruption):
        read_trace_ir(tmp_path / "missing.tir")


def test_trace_store_ir_format(tmp_path):
    store = TraceStore(tmp_path, fmt="ir")
    store.append("t", "trace", (5,))
    store.append("t", "post_i32", (5, 9))
    path = store.finalize("t")
    assert path.suffix == ".tir"
    events = load_trace_file(path)
    assert [e.kind for e in events] == ["instr", "post"]
    with pytest.raises(ValueError):
        TraceStore(tmp_path, fmt="csv")

"""Determinism guarantees of the parallel evaluation subsystem.

Serial and parallel runs must produce byte-identical metrics tables,
and neither cache (instrumentation, solver) may change any scan
verdict — they are pure memoisation of deterministic computations.
"""

import pytest

from repro import build_table4_corpus, evaluate_corpus, ThroughputStats
from repro.engine import (configure_instrumentation_cache, deploy_target,
                          instrumentation_cache, module_fingerprint,
                          setup_chain)
from repro.smt import configure_solver_cache, solver_cache

SCALE = 0.004
TIMEOUT_MS = 6_000


@pytest.fixture(autouse=True)
def fresh_caches():
    """Give every test pristine process-wide caches and restore the
    defaults afterwards."""
    configure_instrumentation_cache(enabled=True)
    configure_solver_cache(enabled=True)
    yield
    configure_instrumentation_cache(enabled=True)
    configure_solver_cache(enabled=True)


@pytest.fixture(scope="module")
def samples():
    return build_table4_corpus(scale=SCALE)


def _formatted(tables):
    return {tool: table.format() for tool, table in tables.items()}


def test_serial_and_parallel_tables_identical(samples):
    serial = evaluate_corpus(samples, timeout_ms=TIMEOUT_MS, rng_seed=7,
                             jobs=1)
    parallel = evaluate_corpus(samples, timeout_ms=TIMEOUT_MS, rng_seed=7,
                               jobs=4)
    assert _formatted(serial) == _formatted(parallel)


def test_caches_never_change_verdicts(samples):
    subset = samples[:6]
    cached = evaluate_corpus(subset, timeout_ms=TIMEOUT_MS, rng_seed=7)
    configure_instrumentation_cache(enabled=False)
    configure_solver_cache(enabled=False)
    uncached = evaluate_corpus(subset, timeout_ms=TIMEOUT_MS, rng_seed=7)
    assert _formatted(cached) == _formatted(uncached)


def test_instrumentation_cache_eliminates_repeat_instrumentation(samples):
    """cache.misses counts actual ``instrument_module`` runs: each
    distinct module is instrumented exactly once even though every
    sample is deployed once per dynamic tool."""
    subset = samples[:5]
    distinct = len({module_fingerprint(s.module) for s in subset})
    cache = configure_instrumentation_cache(enabled=True)
    evaluate_corpus(subset, tools=("wasai", "eosfuzzer"),
                    timeout_ms=TIMEOUT_MS, rng_seed=7)
    assert cache.misses == distinct
    # wasai + eosfuzzer each deploy every sample exactly once.
    assert cache.hits == 2 * len(subset) - distinct


def test_instrumentation_cache_shares_entries_across_deploys(samples):
    module = samples[0].module
    abi = samples[0].contract.abi
    cache = configure_instrumentation_cache(enabled=True)
    first = deploy_target(setup_chain(), "victim", module, abi)
    second = deploy_target(setup_chain(), "victim", module, abi)
    assert cache.misses == 1 and cache.hits == 1
    assert first.site_table is second.site_table


def test_module_fingerprint_is_stable_and_distinct(samples):
    a, b = samples[0].module, samples[1].module
    assert module_fingerprint(a) == module_fingerprint(a)
    assert module_fingerprint(a) != module_fingerprint(b)


def test_solver_cache_hits_during_fuzzing(samples):
    cache = configure_solver_cache(enabled=True)
    evaluate_corpus(samples[:4], tools=("wasai",),
                    timeout_ms=TIMEOUT_MS, rng_seed=7)
    assert cache.hits + cache.misses > 0
    assert solver_cache() is cache


def test_perf_stats_populated(samples):
    perf = ThroughputStats()
    evaluate_corpus(samples[:4], timeout_ms=TIMEOUT_MS, rng_seed=7,
                    jobs=2, perf=perf)
    assert perf.jobs == 2
    assert perf.campaigns == 4 * 3  # three tools per sample
    assert perf.failures == 0
    assert perf.wall_s > 0
    assert perf.campaigns_per_sec > 0
    assert set(perf.stage_seconds) == {"setup", "fuzz", "scan"}
    doc = perf.as_dict()
    assert doc["instr_cache"]["hits"] + doc["instr_cache"]["misses"] > 0
    assert "throughput" in perf.format()

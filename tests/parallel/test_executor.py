"""Tests for the supervised worker-pool executor."""

import os
import time

import pytest

from repro.parallel import TaskResult, default_jobs, run_tasks
from repro.parallel.executor import _run_serial


def _double(task):
    return task * 2


def _misbehave(task):
    kind, value = task
    if kind == "ok":
        return value
    if kind == "raise":
        raise ValueError(f"boom {value}")
    if kind == "crash":
        os._exit(17)
    if kind == "hang":
        time.sleep(120)
    raise AssertionError(f"unknown kind {kind}")


def _unpicklable(task):
    return lambda: task  # lambdas don't pickle


def test_serial_results_are_ordered_and_complete():
    results = run_tasks(_double, [3, 1, 4, 1, 5], jobs=1)
    assert [r.index for r in results] == [0, 1, 2, 3, 4]
    assert [r.value for r in results] == [6, 2, 8, 2, 10]
    assert all(r.ok for r in results)


def test_serial_isolates_exceptions():
    results = run_tasks(_misbehave,
                        [("ok", 1), ("raise", 2), ("ok", 3)], jobs=1)
    assert [r.ok for r in results] == [True, False, True]
    assert "boom 2" in results[1].error
    with pytest.raises(RuntimeError):
        results[1].unwrap()
    assert results[2].unwrap() == 3


def test_parallel_results_are_ordered():
    results = run_tasks(_double, list(range(10)), jobs=3)
    assert [r.index for r in results] == list(range(10))
    assert [r.value for r in results] == [2 * i for i in range(10)]


def test_parallel_matches_serial():
    tasks = list(range(7))
    serial = run_tasks(_double, tasks, jobs=1)
    parallel = run_tasks(_double, tasks, jobs=4)
    assert [r.value for r in serial] == [r.value for r in parallel]


def test_parallel_isolates_exceptions_and_crashes():
    tasks = [("ok", 1), ("raise", 2), ("crash", 3), ("ok", 4)]
    results = run_tasks(_misbehave, tasks, jobs=2)
    assert results[0].ok and results[0].value == 1
    assert not results[1].ok and "boom 2" in results[1].error
    assert not results[2].ok and "worker died" in results[2].error
    assert results[3].ok and results[3].value == 4


def test_parallel_completed_results_survive_later_crash():
    """A crash must never eat results a worker already produced."""
    tasks = [("ok", i) for i in range(6)] + [("crash", 0)]
    results = run_tasks(_misbehave, tasks, jobs=2)
    assert [r.value for r in results[:6]] == list(range(6))
    assert not results[6].ok


def test_parallel_task_timeout():
    tasks = [("ok", 1), ("hang", 0), ("ok", 2)]
    started = time.monotonic()
    results = run_tasks(_misbehave, tasks, jobs=2, timeout_s=1.5)
    assert time.monotonic() - started < 60
    assert results[0].ok and results[2].ok
    assert not results[1].ok and "timeout" in results[1].error


def test_parallel_all_crash_terminates():
    results = run_tasks(_misbehave, [("crash", 0)] * 4, jobs=2)
    assert all(not r.ok for r in results)
    assert all("died" in r.error for r in results)


def test_parallel_unpicklable_result_is_a_task_failure():
    results = run_tasks(_unpicklable, [1, 2], jobs=2)
    assert all(not r.ok for r in results)
    assert all("pickle" in r.error for r in results)


def test_empty_task_list():
    assert run_tasks(_double, [], jobs=4) == []


def test_jobs_zero_uses_cpu_count():
    assert default_jobs() >= 1
    results = run_tasks(_double, [1, 2], jobs=0)
    assert [r.value for r in results] == [2, 4]


def test_elapsed_recorded():
    results = _run_serial(_double, [21])
    assert isinstance(results[0], TaskResult)
    assert results[0].elapsed_s >= 0.0


def test_timeout_is_typed_with_elapsed():
    results = run_tasks(_misbehave, [("hang", 0), ("ok", 1)], jobs=2,
                        timeout_s=1.0)
    assert not results[0].ok
    assert results[0].error_type == "TaskTimeout"
    assert results[0].elapsed_s > 0.0


def test_crash_is_typed():
    results = run_tasks(_misbehave, [("crash", 0), ("ok", 1)], jobs=2)
    assert not results[0].ok
    assert results[0].error_type == "WorkerCrash"


def test_child_traceback_crosses_the_process_boundary():
    for jobs in (1, 2):
        results = run_tasks(_misbehave, [("raise", 5), ("ok", 1)],
                            jobs=jobs)
        assert not results[0].ok
        assert results[0].error_type == "ValueError"
        assert "boom 5" in results[0].traceback
        assert "_misbehave" in results[0].traceback


def test_on_result_fires_exactly_once_per_task():
    for jobs in (1, 3):
        seen = []
        results = run_tasks(_double, [3, 1, 4], jobs=jobs,
                            on_result=lambda r: seen.append(r.index))
        assert sorted(seen) == [0, 1, 2]
        assert [r.value for r in results] == [6, 2, 8]


def test_on_result_fires_for_failures_too():
    seen = {}
    run_tasks(_misbehave, [("ok", 1), ("crash", 0)], jobs=2,
              on_result=lambda r: seen.setdefault(r.index, r))
    assert seen[0].ok
    assert not seen[1].ok and seen[1].error_type == "WorkerCrash"

"""Shared fixtures for the fault-injection suite.

Every test runs with a clean fault plan and scope; whatever a test
installs is torn down afterwards so faults can never leak into
unrelated tests (or into a worker pool spawned later).
"""

import pytest

from repro.engine import configure_instrumentation_cache
from repro.resilience import clear_fault_plan, set_fault_scope
from repro.smt import configure_solver_cache


@pytest.fixture(autouse=True)
def clean_fault_state():
    clear_fault_plan()
    set_fault_scope("")
    yield
    clear_fault_plan()
    set_fault_scope("")


@pytest.fixture(autouse=True)
def fresh_caches():
    configure_instrumentation_cache(enabled=True)
    configure_solver_cache(enabled=True)
    yield
    configure_instrumentation_cache(enabled=True)
    configure_solver_cache(enabled=True)

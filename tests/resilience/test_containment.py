"""End-to-end containment: injected stage faults must be retried,
degraded or quarantined — and must never disturb fault-free samples.

The corpus subset here is four samples (two fake_eos, two fake_notif);
sample keys follow ``{vuln_type}[{index}]``, so ``fake_eos[0]`` scopes
a fault to the first sample only.
"""

import pytest

from repro import (ContractConfig, Fault, ResiliencePolicy, ThroughputStats,
                   build_table4_corpus, generate_contract,
                   install_fault_plan)
from repro.harness import evaluate_corpus, run_wasai

TIMEOUT_MS = 6_000
TOOLS = ("wasai", "eosfuzzer", "eosafe")


@pytest.fixture(scope="module")
def samples():
    return build_table4_corpus(scale=0.004)[:4]


@pytest.fixture(scope="module")
def clean_tables(samples):
    return evaluate_corpus(samples, tools=TOOLS, timeout_ms=TIMEOUT_MS)


def _assert_other_rows_identical(tables, clean_tables, faulted="fake_eos"):
    for tool, table in tables.items():
        for vuln_type, confusion in table.per_type.items():
            if vuln_type == faulted:
                continue
            assert confusion == clean_tables[tool].per_type[vuln_type], \
                f"{tool}/{vuln_type} drifted under an unrelated fault"


# Which tools reach which pipeline stage (eosafe is static: scan only).
STAGE_TOOLS = {
    "instrument": ("wasai", "eosfuzzer"),
    "deploy": ("wasai", "eosfuzzer"),
    "fuzz": ("wasai", "eosfuzzer"),
    "scan": ("wasai", "eosfuzzer", "eosafe"),
}


@pytest.mark.parametrize("stage", sorted(STAGE_TOOLS))
def test_hard_stage_fault_skips_only_that_sample(stage, samples,
                                                clean_tables):
    install_fault_plan(Fault(stage=stage, kind="error",
                             match="fake_eos[0]",
                             message=f"{stage} is down"))
    tables = evaluate_corpus(samples, tools=TOOLS, timeout_ms=TIMEOUT_MS)
    for tool in STAGE_TOOLS[stage]:
        reasons = tables[tool].skipped.get("fake_eos", [])
        assert len(reasons) == 1
        assert f"{stage} is down" in reasons[0]
        assert "fake_eos[0]" in reasons[0]
        assert tables[tool].total().total == len(samples) - 1
        assert "skipped" in tables[tool].format()
    for tool in set(TOOLS) - set(STAGE_TOOLS[stage]):
        assert not tables[tool].skipped
        assert tables[tool].total().total == len(samples)
    _assert_other_rows_identical(tables, clean_tables)


@pytest.mark.parametrize("stage", ["symback", "solve"])
def test_symbolic_stage_fault_degrades_instead_of_skipping(
        stage, samples, clean_tables):
    install_fault_plan(Fault(stage=stage, kind="error"))
    tables = evaluate_corpus(samples, tools=TOOLS, timeout_ms=TIMEOUT_MS)
    for tool, table in tables.items():
        assert not table.skipped
        assert table.total().total == len(samples)
    # Black-box campaigns and the baselines never consult the symbolic
    # side, so their rows cannot move.
    for tool in ("eosfuzzer", "eosafe"):
        for vuln_type, confusion in tables[tool].per_type.items():
            assert confusion == clean_tables[tool].per_type[vuln_type]


def test_transient_fault_is_retried_and_leaves_no_trace(samples,
                                                        clean_tables):
    install_fault_plan(Fault(stage="scan", kind="transient", times=1,
                             match="fake_eos[0]"))
    perf = ThroughputStats()
    tables = evaluate_corpus(samples, tools=TOOLS, timeout_ms=TIMEOUT_MS,
                             perf=perf)
    assert perf.retries >= 1
    for tool, table in tables.items():
        assert not table.skipped
        assert table.format() == clean_tables[tool].format()


def test_solver_loss_degrades_to_black_box_and_still_detects():
    """The ISSUE acceptance path: a sample whose solver always fails
    must complete via black-box degradation (and the blatant fake_eos
    hole is still reachable without symbolic feedback)."""
    install_fault_plan(Fault(stage="solve", kind="error"))
    contract = generate_contract(ContractConfig(seed=4,
                                                fake_eos_guard=False))
    run = run_wasai(contract.module, contract.abi, timeout_ms=8_000)
    assert run.report.degraded
    assert any("degraded to black-box" in note
               for note in run.report.contained)
    assert run.report.iterations > 0
    assert run.scan.detected("fake_eos")


def test_fuzzer_contains_trap_storms():
    install_fault_plan(Fault(stage="trap", kind="trap_storm", times=2))
    contract = generate_contract(ContractConfig(seed=4,
                                                fake_eos_guard=False))
    run = run_wasai(contract.module, contract.abi, timeout_ms=8_000)
    assert sum("execute:" in note for note in run.report.contained) == 2
    assert not run.report.degraded
    assert run.scan.detected("fake_eos")


def test_crashing_sample_is_quarantined_and_listed(samples):
    """A sample that crashes its worker three times lands in quarantine
    and shows up in the metrics table — never silently dropped."""
    install_fault_plan(Fault(stage="fuzz", kind="crash",
                             match="fake_eos[0]"))
    policy = ResiliencePolicy(max_retries=2, quarantine_after=3)
    perf = ThroughputStats()
    tables = evaluate_corpus(samples[:2], tools=("wasai",),
                             timeout_ms=TIMEOUT_MS, jobs=2,
                             policy=policy, perf=perf)
    table = tables["wasai"]
    assert table.total().total == 1          # the healthy sample
    reasons = table.skipped["fake_eos"]
    assert len(reasons) == 1
    assert "quarantined after 3 failures" in reasons[0]
    assert "fake_eos[0]" in reasons[0]
    assert "quarantined after 3 failures" in table.format()
    assert perf.failures == 3
    assert perf.retries == 2
    assert perf.quarantined == 1


def test_task_timeout_is_typed_and_counted_as_skipped(samples):
    install_fault_plan(Fault(stage="scan", kind="hang", hang_s=30.0,
                             match="fake_eos[0]"))
    policy = ResiliencePolicy(max_retries=0)
    perf = ThroughputStats()
    tables = evaluate_corpus(samples[:2], tools=("eosafe",),
                             timeout_ms=TIMEOUT_MS, jobs=2,
                             task_timeout_s=1.5, policy=policy, perf=perf)
    table = tables["eosafe"]
    assert table.total().total == 1
    reasons = table.skipped["fake_eos"]
    assert len(reasons) == 1 and "timeout after 1.5s" in reasons[0]
    assert perf.failures == 1
    assert perf.quarantined == 0

"""The concolic divergence sentinel, end to end.

Fault-injected trace corruption (``Fault(stage="trace",
kind="corrupt")``) flips recorded operands before the symbolic replay
sees them; the sentinel's concrete-shadow cross-check must catch the
mismatch, raise a typed :class:`~repro.resilience.DivergenceError`,
and the reporting chain must quarantine the sample as *divergent* —
its verdict excluded from the confusion counts, never silently folded
into TP/FP.
"""

import pytest

from repro import (ContractConfig, Fault, generate_contract,
                   install_fault_plan)
from repro.harness import evaluate_corpus, run_wasai
from repro.resilience import (CampaignError, DEGRADABLE_STAGES,
                              DivergenceError)

TIMEOUT_MS = 4_000


@pytest.fixture(scope="module")
def contract():
    return generate_contract(ContractConfig(seed=3, auth_check=False))


# -- the sentinel inside one campaign ----------------------------------------

def test_clean_campaign_checkpoints_and_stays_silent(contract):
    run = run_wasai(contract.module, contract.abi,
                    timeout_ms=TIMEOUT_MS, rng_seed=1)
    assert run.report.sentinel_checkpoints > 0
    assert run.report.divergences == []
    assert run.scan.divergences == []


def test_corrupted_trace_trips_the_sentinel(contract):
    install_fault_plan(Fault(stage="trace", kind="corrupt"))
    run = run_wasai(contract.module, contract.abi,
                    timeout_ms=TIMEOUT_MS, rng_seed=1)
    assert run.report.divergences
    # The alarm names the first-diverging site.
    assert "pc" in run.report.divergences[0]
    # Divergences flow into the scan result for the harness to fold.
    assert run.scan.divergences == run.report.divergences


def test_sentinel_can_be_disabled(contract):
    install_fault_plan(Fault(stage="trace", kind="corrupt"))
    run = run_wasai(contract.module, contract.abi,
                    timeout_ms=TIMEOUT_MS, rng_seed=1,
                    divergence_check=False)
    assert run.report.sentinel_checkpoints == 0
    assert run.report.divergences == []


def test_divergence_does_not_degrade_the_campaign(contract):
    """Divergence is an unsound replay, not an unavailable stage: the
    campaign must not fall back to black-box fuzzing because of it."""
    assert "divergence" not in DEGRADABLE_STAGES
    install_fault_plan(Fault(stage="trace", kind="corrupt"))
    run = run_wasai(contract.module, contract.abi,
                    timeout_ms=TIMEOUT_MS, rng_seed=1)
    assert not run.report.degraded


# -- the typed error ----------------------------------------------------------

def test_divergence_error_roundtrips_with_site_context():
    error = DivergenceError("shadow disagrees", func_index=16, pc=4,
                            opcode="i64.store", shadow=554, traced=4650)
    doc = error.to_doc()
    revived = CampaignError.from_doc(doc)
    assert isinstance(revived, DivergenceError)
    assert revived.pc == 4
    assert revived.opcode == "i64.store"
    assert revived.shadow == 554
    assert not revived.retryable
    assert "func 16" in str(revived)


# -- corpus-level folding -----------------------------------------------------

@pytest.fixture(scope="module")
def samples():
    from repro import build_table4_corpus
    return build_table4_corpus(scale=0.004)[:4]


def test_divergent_sample_becomes_its_own_row_class(samples):
    install_fault_plan(Fault(stage="trace", kind="corrupt",
                             match="fake_eos[0]"))
    tables = evaluate_corpus(samples, tools=("wasai",),
                             timeout_ms=TIMEOUT_MS)
    table = tables["wasai"]
    # The divergent sample is its own row class...
    assert table.divergent_count() == 1
    reasons = table.divergent.get("fake_eos", [])
    assert len(reasons) == 1
    assert "fake_eos[0]" in reasons[0]
    # ...excluded from the confusion counts, not folded into TP/FP...
    assert table.total().total == len(samples) - 1
    # ...and not double-reported as a generic skip.
    assert table.skipped_count() == 0
    assert "divergent" in table.format()


def test_clean_corpus_has_no_divergent_rows(samples):
    tables = evaluate_corpus(samples, tools=("wasai",),
                             timeout_ms=TIMEOUT_MS)
    assert tables["wasai"].divergent_count() == 0
    assert tables["wasai"].total().total == len(samples)


def test_divergence_check_flag_threads_through_the_corpus(samples):
    install_fault_plan(Fault(stage="trace", kind="corrupt"))
    tables = evaluate_corpus(samples, tools=("wasai",),
                             timeout_ms=TIMEOUT_MS,
                             divergence_check=False)
    assert tables["wasai"].divergent_count() == 0
    assert tables["wasai"].total().total == len(samples)

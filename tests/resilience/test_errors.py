"""The structured campaign error taxonomy."""

import pytest

from repro.parallel import TaskResult
from repro.resilience.errors import (CampaignError, DeployError, FuzzError,
                                     InstrumentError, ScanError,
                                     SolverError, SymbackError, TaskTimeout,
                                     TrapStorm, WorkerCrash,
                                     DEGRADABLE_STAGES, STAGES,
                                     task_result_error)


def test_stage_attributes():
    assert InstrumentError().stage == "instrument"
    assert DeployError().stage == "deploy"
    assert FuzzError().stage == "fuzz"
    assert TrapStorm().stage == "fuzz"
    assert SymbackError().stage == "symback"
    assert SolverError().stage == "solve"
    assert ScanError().stage == "scan"
    assert TaskTimeout().stage == "task"
    assert WorkerCrash().stage == "task"
    for stage in DEGRADABLE_STAGES:
        assert stage in STAGES


def test_retryability_defaults():
    assert not FuzzError().retryable
    assert TaskTimeout().retryable
    assert WorkerCrash().retryable
    assert FuzzError(retryable=True).retryable


def test_str_includes_stage_and_sample():
    error = SolverError("no model", sample_id="fake_eos[3]")
    assert str(error) == "[solve fake_eos[3]] no model"
    assert str(FuzzError("boom")) == "[fuzz] boom"


def test_wrap_captures_traceback():
    try:
        raise ValueError("inner detail")
    except ValueError as exc:
        wrapped = SymbackError.wrap(exc, sample_id="s1")
    assert isinstance(wrapped, SymbackError)
    assert wrapped.sample_id == "s1"
    assert "ValueError: inner detail" in str(wrapped)
    assert "inner detail" in wrapped.traceback_str
    assert "test_wrap_captures_traceback" in wrapped.traceback_str


def test_wrap_passes_campaign_errors_through():
    original = SolverError("budget exhausted")
    try:
        raise original
    except CampaignError as exc:
        wrapped = FuzzError.wrap(exc, sample_id="s2")
    assert wrapped is original          # stage stays the precise one
    assert wrapped.stage == "solve"
    assert wrapped.sample_id == "s2"    # filled in, not overwritten


def test_doc_round_trip_preserves_class():
    error = TaskTimeout("timeout after 2s", sample_id="w[1]",
                        elapsed_s=2.5)
    doc = error.to_doc()
    revived = CampaignError.from_doc(doc)
    assert isinstance(revived, TaskTimeout)
    assert revived.stage == "task"
    assert revived.retryable
    assert revived.sample_id == "w[1]"
    assert "timeout after 2s" in str(revived)


def test_doc_round_trip_unknown_type_degrades_gracefully():
    revived = CampaignError.from_doc({"type": "FutureError",
                                      "stage": "fuzz",
                                      "message": "x"})
    assert isinstance(revived, CampaignError)
    assert revived.stage == "fuzz"


@pytest.mark.parametrize("error_type, expected", [
    ("TaskTimeout", TaskTimeout),
    ("WorkerCrash", WorkerCrash),
    ("SolverError", SolverError),
    ("ValueError", CampaignError),
    (None, CampaignError),
])
def test_task_result_error_mapping(error_type, expected):
    result = TaskResult(0, False, None, "it failed", 1.0, error_type,
                        "tb text")
    error = task_result_error(result)
    assert type(error) is expected
    assert error.traceback_str == "tb text"


def test_task_result_error_none_for_success():
    assert task_result_error(TaskResult(0, True, 42)) is None

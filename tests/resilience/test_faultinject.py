"""The deterministic fault-injection harness itself."""

import pytest

from repro.resilience import (Fault, clear_fault_plan, fault_plan,
                              fault_scope, install_fault_plan)
from repro.resilience.errors import (DeployError, FuzzError, SolverError,
                                     TrapStorm)
from repro.resilience.faultinject import inject, set_fault_scope


def test_no_plan_is_a_no_op():
    clear_fault_plan()
    inject("fuzz")  # must not raise


def test_unknown_kind_rejected():
    with pytest.raises(ValueError):
        Fault(stage="fuzz", kind="meteor")


def test_error_fault_raises_typed_stage_error():
    install_fault_plan(Fault(stage="solve", kind="error"))
    with pytest.raises(SolverError):
        inject("solve")
    inject("fuzz")  # other stages untouched


def test_trap_storm_kind():
    install_fault_plan(Fault(stage="trap", kind="trap_storm"))
    with pytest.raises(TrapStorm):
        inject("trap")


def test_transient_faults_are_retryable():
    install_fault_plan(Fault(stage="deploy", kind="transient"))
    with pytest.raises(DeployError) as info:
        inject("deploy")
    assert info.value.retryable
    install_fault_plan(Fault(stage="deploy", kind="error"))
    with pytest.raises(DeployError) as info:
        inject("deploy")
    assert not info.value.retryable


def test_after_and_times_windows():
    install_fault_plan(Fault(stage="fuzz", kind="error", after=2, times=2))
    hits = []
    for _ in range(6):
        try:
            inject("fuzz")
            hits.append(False)
        except FuzzError:
            hits.append(True)
    assert hits == [False, False, True, True, False, False]


def test_match_selects_by_scope():
    install_fault_plan(Fault(stage="fuzz", kind="error",
                             match="fake_eos[1]"))
    set_fault_scope("fake_notif[0]")
    inject("fuzz")
    set_fault_scope("fake_eos[1]")
    with pytest.raises(FuzzError) as info:
        inject("fuzz")
    assert info.value.sample_id == "fake_eos[1]"


def test_fault_scope_context_manager_restores():
    set_fault_scope("outer")
    install_fault_plan(Fault(stage="fuzz", kind="error", match="inner"))
    with fault_scope("inner"):
        with pytest.raises(FuzzError):
            inject("fuzz")
    inject("fuzz")  # scope is "outer" again: no match


def test_count_kind_records_without_failing():
    plan = install_fault_plan(Fault(stage="fuzz", kind="count"))
    for _ in range(3):
        inject("fuzz")
    inject("solve")
    assert plan.hits("fuzz") == 3
    assert plan.hits("solve") == 1
    assert fault_plan() is plan


def test_per_fault_counters_are_independent():
    plan = install_fault_plan(
        Fault(stage="fuzz", kind="error", match="a", times=1),
        Fault(stage="fuzz", kind="error", match="b", times=1))
    with fault_scope("a"):
        with pytest.raises(FuzzError):
            inject("fuzz")
        inject("fuzz")
    with fault_scope("b"):
        with pytest.raises(FuzzError):
            inject("fuzz")
    assert plan.hits("fuzz") == 3

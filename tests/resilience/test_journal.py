"""The append-only checkpoint journal."""

import json

from repro import ContractConfig, generate_contract
from repro.parallel.campaigns import CampaignResult, CampaignTask
from repro.resilience import CampaignJournal
from repro.resilience.journal import (campaign_result_from_doc,
                                      campaign_result_to_doc,
                                      campaign_task_key)
from repro.scanner.detectors import ScanResult, VulnerabilityFinding


def _scan() -> ScanResult:
    scan = ScanResult(target_account=42)
    scan.findings["fake_eos"] = VulnerabilityFinding(
        "fake_eos", True, "transfer accepted from eosponser")
    scan.findings["rollback"] = VulnerabilityFinding("rollback", False)
    return scan


def _result() -> CampaignResult:
    return CampaignResult(scans={"wasai": _scan()},
                          stage_seconds={"fuzz": 1.5},
                          instr_cache_hits=2,
                          errors={"eosafe": {"type": "ScanError",
                                             "stage": "scan",
                                             "message": "[scan] boom"}},
                          degraded=("wasai",),
                          retries=1)


def test_record_load_round_trip(tmp_path):
    journal = CampaignJournal(tmp_path / "journal.jsonl")
    journal.record("k1", campaign_result_to_doc(_result()))
    entries = journal.load()
    assert set(entries) == {"k1"}
    revived = campaign_result_from_doc(entries["k1"]["result"])
    assert revived.scans["wasai"].detected("fake_eos")
    assert not revived.scans["wasai"].detected("rollback")
    assert revived.scans["wasai"].findings["fake_eos"].evidence \
        == "transfer accepted from eosponser"
    assert revived.stage_seconds == {"fuzz": 1.5}
    assert revived.errors["eosafe"]["stage"] == "scan"
    assert revived.degraded == ("wasai",)
    assert revived.retries == 1


def test_last_entry_wins(tmp_path):
    journal = CampaignJournal(tmp_path / "journal.jsonl")
    journal.record("k", {"scans": {}, "retries": 0})
    journal.record("k", {"scans": {}, "retries": 7})
    assert journal.load()["k"]["result"]["retries"] == 7


def test_load_tolerates_truncated_tail(tmp_path):
    path = tmp_path / "journal.jsonl"
    journal = CampaignJournal(path)
    journal.record("good", {"scans": {}})
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"v": 1, "key": "torn", "resu')  # killed mid-write
    assert set(journal.load()) == {"good"}


def test_load_skips_foreign_versions_and_noise(tmp_path):
    path = tmp_path / "journal.jsonl"
    path.write_text('\n'.join([
        '{"v": 99, "key": "future", "result": {}}',
        '[1, 2, 3]',
        '',
        '{"v": 1, "key": "ok", "result": {"scans": {}}}',
    ]) + '\n')
    assert set(CampaignJournal(path).load()) == {"ok"}


def test_missing_file_loads_empty(tmp_path):
    assert CampaignJournal(tmp_path / "absent.jsonl").load() == {}


def test_journal_lines_are_plain_json(tmp_path):
    path = tmp_path / "journal.jsonl"
    CampaignJournal(path).record("k", campaign_result_to_doc(_result()))
    for line in path.read_text().splitlines():
        assert json.loads(line)["v"] == 1


def test_campaign_task_key_tracks_result_determinants():
    contract = generate_contract(ContractConfig(seed=4))
    other = generate_contract(ContractConfig(seed=5,
                                             fake_eos_guard=False))

    def task(**overrides):
        fields = dict(module=contract.module, abi=contract.abi,
                      tools=("wasai",), timeout_ms=6000.0, rng_seed=7)
        fields.update(overrides)
        return CampaignTask(**fields)

    base = campaign_task_key(task())
    assert campaign_task_key(task()) == base  # stable
    assert campaign_task_key(task(rng_seed=8)) != base
    assert campaign_task_key(task(timeout_ms=7000.0)) != base
    assert campaign_task_key(task(tools=("wasai", "eosafe"))) != base
    assert campaign_task_key(task(address_pool=True)) != base
    assert campaign_task_key(task(module=other.module)) != base
    # ... but not things that cannot change the result:
    assert campaign_task_key(task(sample_key="renamed[0]")) == base

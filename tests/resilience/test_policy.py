"""Retry, backoff, degradation and quarantine policy units."""

import pytest

from repro.resilience import Quarantine, ResiliencePolicy, run_with_retry
from repro.resilience.errors import (FuzzError, SolverError, SymbackError,
                                     TaskTimeout)


def test_backoff_schedule_is_deterministic_exponential():
    policy = ResiliencePolicy(backoff_base_s=0.5)
    assert policy.backoff_s(0) == 0.0
    assert [policy.backoff_s(n) for n in (1, 2, 3)] == [0.5, 1.0, 2.0]
    assert ResiliencePolicy().backoff_s(3) == 0.0


def test_should_degrade_only_on_symbolic_stages():
    policy = ResiliencePolicy()
    assert policy.should_degrade(SolverError("x"))
    assert policy.should_degrade(SymbackError("x"))
    assert not policy.should_degrade(FuzzError("x"))
    off = ResiliencePolicy(degrade=False)
    assert not off.should_degrade(SolverError("x"))


def test_run_with_retry_retries_only_retryable():
    calls = []

    def flaky():
        calls.append(1)
        if len(calls) < 3:
            raise TaskTimeout("slow")
        return "done"

    value, error, attempts = run_with_retry(
        flaky, ResiliencePolicy(max_retries=5))
    assert (value, error, attempts) == ("done", None, 3)

    calls.clear()

    def hard():
        calls.append(1)
        raise FuzzError("broken")

    value, error, attempts = run_with_retry(
        hard, ResiliencePolicy(max_retries=5))
    assert value is None
    assert isinstance(error, FuzzError)
    assert attempts == 1  # non-retryable: one attempt only


def test_run_with_retry_bounded_and_sleeps():
    slept = []

    def always():
        raise TaskTimeout("slow")

    value, error, attempts = run_with_retry(
        always, ResiliencePolicy(max_retries=2, backoff_base_s=0.25),
        sleep=slept.append)
    assert value is None and isinstance(error, TaskTimeout)
    assert attempts == 3           # 1 try + 2 retries
    assert slept == [0.25, 0.5]    # deterministic backoff, no jitter


def test_run_with_retry_propagates_foreign_exceptions():
    def alien():
        raise ZeroDivisionError

    with pytest.raises(ZeroDivisionError):
        run_with_retry(alien, ResiliencePolicy())


def test_quarantine_threshold_and_report():
    quarantine = Quarantine(threshold=3)
    assert not quarantine.record_failure("s", "crash 1")
    assert not quarantine.record_failure("s", "crash 2")
    assert not quarantine.is_quarantined("s")
    assert quarantine.record_failure("s", "crash 3")  # just crossed
    assert quarantine.is_quarantined("s")
    assert not quarantine.record_failure("s", "crash 4")  # already over
    assert quarantine.failure_count("s") == 4
    quarantine.record_failure("other", "one-off")
    assert set(quarantine.quarantined()) == {"s"}
    assert quarantine.quarantined()["s"][0] == "crash 1"

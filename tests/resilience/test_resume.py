"""Checkpoint/resume round trips through the corpus drivers.

The interruption is a simulated ^C: an injected ``KeyboardInterrupt``
mid-corpus.  The journal must keep everything completed before the
abort, a resumed run must reuse those results *without recomputing
them* (proved with a counting fault), and the final tables must be
byte-identical to an uninterrupted run.
"""

import pytest

from repro import (Fault, ThroughputStats, build_table4_corpus,
                   clear_fault_plan, install_fault_plan)
from repro.harness import evaluate_corpus
from repro.resilience import CampaignJournal
from repro.study import format_wild_study, run_wild_study

TIMEOUT_MS = 6_000


@pytest.fixture(scope="module")
def samples():
    return build_table4_corpus(scale=0.004)[:6]


def _formatted(tables):
    return {tool: table.format() for tool, table in tables.items()}


def test_interrupted_run_resumes_without_recomputation(samples, tmp_path):
    journal_path = tmp_path / "table4.jsonl"

    # 1. An uninterrupted reference run (no journal, no faults).
    reference = _formatted(evaluate_corpus(samples, tools=("wasai",),
                                           timeout_ms=TIMEOUT_MS))

    # 2. Kill the run after four completed samples.
    install_fault_plan(Fault(stage="fuzz", kind="abort", after=4))
    with pytest.raises(KeyboardInterrupt):
        evaluate_corpus(samples, tools=("wasai",), timeout_ms=TIMEOUT_MS,
                        journal=journal_path)
    assert len(CampaignJournal(journal_path).load()) == 4

    # 3. Resume: only the two unfinished samples reach the fuzz stage.
    plan = install_fault_plan(Fault(stage="fuzz", kind="count"))
    perf = ThroughputStats()
    resumed = evaluate_corpus(samples, tools=("wasai",),
                              timeout_ms=TIMEOUT_MS,
                              journal=journal_path, resume=True,
                              perf=perf)
    assert plan.hits("fuzz") == 2       # journaled results reused verbatim
    assert perf.campaigns == 2          # only fresh work is accounted
    assert _formatted(resumed) == reference

    # 4. Resuming an already-complete journal recomputes nothing.
    plan = install_fault_plan(Fault(stage="fuzz", kind="count"))
    again = evaluate_corpus(samples, tools=("wasai",),
                            timeout_ms=TIMEOUT_MS,
                            journal=journal_path, resume=True)
    assert plan.hits("fuzz") == 0
    assert _formatted(again) == reference


def test_journal_without_resume_recomputes_but_checkpoints(samples,
                                                           tmp_path):
    journal_path = tmp_path / "fresh.jsonl"
    subset = samples[:2]
    evaluate_corpus(subset, tools=("wasai",), timeout_ms=TIMEOUT_MS,
                    journal=journal_path)
    assert len(CampaignJournal(journal_path).load()) == 2
    plan = install_fault_plan(Fault(stage="fuzz", kind="count"))
    evaluate_corpus(subset, tools=("wasai",), timeout_ms=TIMEOUT_MS,
                    journal=journal_path)  # resume NOT requested
    assert plan.hits("fuzz") == 2          # recomputed, by design


def test_wild_study_resumes_and_reports_byte_identical(tmp_path):
    journal_path = tmp_path / "wild.jsonl"
    kwargs = dict(scale=0.004, timeout_ms=5_000)

    reference = format_wild_study(run_wild_study(**kwargs))

    install_fault_plan(Fault(stage="fuzz", kind="abort", after=2))
    with pytest.raises(KeyboardInterrupt):
        run_wild_study(journal=journal_path, **kwargs)
    clear_fault_plan()
    assert len(CampaignJournal(journal_path).load()) == 2

    plan = install_fault_plan(Fault(stage="fuzz", kind="count"))
    resumed = run_wild_study(journal=journal_path, resume=True, **kwargs)
    assert plan.hits("fuzz") == resumed.total - 2
    assert format_wild_study(resumed) == reference

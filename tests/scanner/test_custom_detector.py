"""Tests for the pluggable-detector extension API (§5)."""

import random

from repro.benchgen import ContractConfig, generate_contract
from repro.engine import WasaiFuzzer, deploy_target, setup_chain
from repro.scanner import Detector, VulnerabilityFinding, scan_report


class DeferredRewardDetector(Detector):
    """A sixth, user-supplied oracle: flag contracts that answer
    payments with *deferred* actions (informational, not a bug — it
    exercises the extension API end to end)."""

    vuln_type = "defer_reward"

    def detect(self, report, target, eosponser_id):
        for obs in report.observations:
            if obs.action_name != "transfer":
                continue
            if any(c.api == "send_deferred"
                   for c in obs.record.host_calls):
                return VulnerabilityFinding(
                    self.vuln_type, True,
                    "payment answered with a deferred action")
        return VulnerabilityFinding(self.vuln_type, False)


def campaign(config):
    generated = generate_contract(config)
    chain = setup_chain()
    target = deploy_target(chain, "victim", generated.module,
                           generated.abi)
    fuzzer = WasaiFuzzer(chain, target, rng=random.Random(4),
                         timeout_ms=15_000)
    return fuzzer.run(), target


def test_custom_detector_positive():
    report, target = campaign(ContractConfig(seed=61,
                                             reward_scheme="defer"))
    result = scan_report(report, target,
                         extra_detectors=[DeferredRewardDetector()])
    assert result.detected("defer_reward")
    # The built-in five still run.
    assert set(result.findings) >= {"fake_eos", "fake_notif", "missauth",
                                    "blockinfodep", "rollback",
                                    "defer_reward"}


def test_custom_detector_negative():
    report, target = campaign(ContractConfig(seed=61,
                                             reward_scheme="inline"))
    result = scan_report(report, target,
                         extra_detectors=[DeferredRewardDetector()])
    assert not result.detected("defer_reward")
    assert result.detected("rollback")


def test_detector_base_class_is_abstract():
    import pytest
    with pytest.raises(NotImplementedError):
        Detector().detect(None, None, None)

"""End-to-end tests of the five detectors (§3.5) against ground truth."""

import random

import pytest

from repro.benchgen import ContractConfig, generate_contract
from repro.engine import WasaiFuzzer, deploy_target, setup_chain
from repro.scanner import format_report, scan_report

TIMEOUT = 20_000


def scan(config: ContractConfig, seed=21):
    chain = setup_chain()
    generated = generate_contract(config)
    target = deploy_target(chain, config.account, generated.module,
                           generated.abi)
    fuzzer = WasaiFuzzer(chain, target, rng=random.Random(seed),
                         timeout_ms=TIMEOUT)
    report = fuzzer.run()
    return generated, scan_report(report, target)


# -- Fake EOS (§2.3.1) ---------------------------------------------------------

def test_fake_eos_vulnerable_detected():
    _, result = scan(ContractConfig(seed=1, fake_eos_guard=False))
    assert result.detected("fake_eos")


def test_fake_eos_patched_not_flagged():
    _, result = scan(ContractConfig(seed=1, fake_eos_guard=True))
    assert not result.detected("fake_eos")


# -- Fake Notification (§2.3.2) --------------------------------------------------

def test_fake_notif_vulnerable_detected():
    _, result = scan(ContractConfig(seed=2, fake_notif_guard=False))
    assert result.detected("fake_notif")


def test_fake_notif_guard_recognised():
    _, result = scan(ContractConfig(seed=2, fake_notif_guard=True))
    finding = result.findings["fake_notif"]
    assert not finding.detected
    assert "guard code executed" in finding.evidence


# -- MissAuth (§2.3.3) --------------------------------------------------------------

def test_missauth_vulnerable_detected():
    _, result = scan(ContractConfig(seed=3, auth_check=False))
    assert result.detected("missauth")


def test_missauth_checked_not_flagged():
    _, result = scan(ContractConfig(seed=3, auth_check=True))
    assert not result.detected("missauth")


# -- BlockinfoDep (§2.3.4) --------------------------------------------------------------

def test_blockinfodep_detected():
    _, result = scan(ContractConfig(seed=4, use_blockinfo=True,
                                    reward_scheme="inline"))
    assert result.detected("blockinfodep")


def test_blockinfodep_absent_not_flagged():
    _, result = scan(ContractConfig(seed=4, use_blockinfo=False))
    assert not result.detected("blockinfodep")


def test_blockinfodep_unreachable_not_flagged():
    # The §4.2 safe twin: the tapos template sits behind an
    # unsatisfiable branch.
    _, result = scan(ContractConfig(seed=5, use_blockinfo=True,
                                    reward_scheme="inline",
                                    unreachable_reward=True))
    assert not result.detected("blockinfodep")


# -- Rollback (§2.3.5) ---------------------------------------------------------------------

def test_rollback_inline_detected():
    _, result = scan(ContractConfig(seed=6, reward_scheme="inline"))
    assert result.detected("rollback")


def test_rollback_defer_is_safe():
    # The paper's patch: deferred rewards cannot be reverted.
    _, result = scan(ContractConfig(seed=6, reward_scheme="defer"))
    assert not result.detected("rollback")


def test_rollback_payouts_do_not_confuse_detector():
    # payout uses send_inline legitimately (behind auth); rollback is
    # only about the eosponser's response to payments.
    _, result = scan(ContractConfig(seed=7, reward_scheme="defer",
                                    has_payout=True, auth_check=True))
    assert not result.detected("rollback")


# -- the full matrix against ground truth -----------------------------------------------------

@pytest.mark.parametrize("seed", range(3))
def test_all_detectors_match_ground_truth(seed):
    rng = random.Random(seed * 7919)
    config = ContractConfig(
        seed=seed,
        fake_eos_guard=rng.random() < 0.5,
        fake_notif_guard=rng.random() < 0.5,
        auth_check=rng.random() < 0.5,
        use_blockinfo=rng.random() < 0.5,
        reward_scheme=rng.choice(("inline", "defer")),
        maze_depth=rng.randint(0, 2),
    )
    generated, result = scan(config, seed=seed + 100)
    for vuln_type, truth in generated.ground_truth.items():
        assert result.detected(vuln_type) == truth, (
            vuln_type, config, format_report(result))


# -- report formatting --------------------------------------------------------------------------

def test_format_report_lists_all_types():
    _, result = scan(ContractConfig(seed=9, fake_eos_guard=False))
    text = format_report(result)
    assert "Fake EOS" in text
    assert "Rollback" in text
    assert "VULNERABLE" in text

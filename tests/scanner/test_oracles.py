"""Unit tests for the adversary-oracle payload builders (§2.3)."""

import pytest

from repro.engine.deploy import setup_chain
from repro.engine.seeds import Seed
from repro.eosio import Abi, Asset, N, Name, TRANSFER_SIGNATURE
from repro.scanner import (PAYLOAD_KINDS, build_payload,
                           setup_adversaries)

ABI = Abi.from_signatures({"transfer": TRANSFER_SIGNATURE,
                           "init": (("owner", "name"),)})


@pytest.fixture
def setup():
    chain = setup_chain()
    chain.create_account("victim")
    return setup_adversaries(chain, "victim"), chain


def transfer_seed(amount="5.0000 EOS", memo="m"):
    return Seed("transfer", [Name("anyone"), Name("anywhere"),
                             Asset.from_string(amount), memo])


def test_setup_deploys_agents(setup):
    adversaries, chain = setup
    assert chain.get_contract("fake.token") is not None
    assert chain.get_contract("fake.notif") is not None
    assert adversaries.victim == N("victim")


def test_direct_payload_targets_victim(setup):
    adversaries, _ = setup
    actions, params = build_payload("direct", adversaries,
                                    transfer_seed(),
                                    ABI.action("transfer"))
    assert actions[0].account == N("victim")
    assert actions[0].authorization == [N("attacker")]
    # The victim observes the seed values verbatim.
    assert params[0] == Name("anyone")


def test_legit_payload_pays_through_official_token(setup):
    adversaries, _ = setup
    actions, params = build_payload("legit", adversaries,
                                    transfer_seed(),
                                    ABI.action("transfer"))
    assert actions[0].account == N("eosio.token")
    assert params[0] == Name("player")
    assert params[1] == Name("victim")


def test_legit_payload_payer_override(setup):
    adversaries, _ = setup
    actions, params = build_payload("legit", adversaries,
                                    transfer_seed(),
                                    ABI.action("transfer"),
                                    payer=N("boss.account"))
    assert params[0] == Name("boss.account")
    assert actions[0].authorization == [N("boss.account")]


def test_fake_token_payload_uses_counterfeit_issuer(setup):
    adversaries, _ = setup
    actions, params = build_payload("fake_token", adversaries,
                                    transfer_seed(),
                                    ABI.action("transfer"))
    assert actions[0].account == N("fake.token")
    assert params[1] == Name("victim")


def test_fake_notif_payload_routes_via_agent(setup):
    adversaries, _ = setup
    actions, params = build_payload("fake_notif", adversaries,
                                    transfer_seed(),
                                    ABI.action("transfer"))
    assert actions[0].account == N("eosio.token")
    assert params[1] == Name("fake.notif")


def test_payment_quantity_clamped(setup):
    adversaries, _ = setup
    for bad in ("0.0000 EOS", "-3.0000 EOS"):
        _, params = build_payload("legit", adversaries,
                                  transfer_seed(amount=bad),
                                  ABI.action("transfer"))
        assert params[2].is_positive


def test_non_transfer_seed_is_direct_push(setup):
    adversaries, _ = setup
    seed = Seed("init", [Name("attacker")])
    actions, params = build_payload("legit", adversaries, seed,
                                    ABI.action("init"))
    assert actions[0].account == N("victim")
    assert actions[0].name == N("init")
    assert params == [Name("attacker")]


def test_unknown_kind_rejected(setup):
    adversaries, _ = setup
    with pytest.raises(ValueError):
        build_payload("mystery", adversaries, transfer_seed(),
                      ABI.action("transfer"))


def test_all_payload_kinds_enumerated():
    assert set(PAYLOAD_KINDS) == {"legit", "direct", "fake_token",
                                  "fake_notif"}

"""Family rules over hand-built surfaces: exact evidence shapes."""

from dataclasses import dataclass

from repro.eosio.name import N
from repro.semoracle import (DbWrite, HostArgCall, SemanticSurface,
                             SurfaceRecord, evaluate_data_consistency,
                             evaluate_notif_chain, evaluate_permission,
                             evaluate_token_arith)

VICTIM = N("victim")


@dataclass
class FakeObservation:
    action_name: str = "transfer"
    payload_kind: str = "legit"


@dataclass
class FakeReport:
    target_account: int = VICTIM
    observations: tuple = ()
    db_state: dict = None


def _asset(amount: int, symbol: int = 1_397_703_940) -> bytes:
    return amount.to_bytes(8, "little", signed=True) \
        + symbol.to_bytes(8, "little")


def _stat(supply: int, symbol: int = 1_397_703_940) -> bytes:
    return _asset(supply, symbol) + _asset(1 << 60, symbol) \
        + VICTIM.to_bytes(8, "little")


def _surface(records=(), calls=None, db_state=None) -> SemanticSurface:
    records = list(records)
    return SemanticSurface(
        calls=list(calls) if calls is not None
        else [[] for _ in records],
        records=records, db_state=dict(db_state or {}))


def _write(after, code: int = VICTIM, table: int = N("accounts"),
           before=None) -> DbWrite:
    return DbWrite(code=code, scope=code, table=table, pkey=7,
                   before=before, after=after)


# -- token_arith ------------------------------------------------------------

def test_token_arith_fires_on_negative_asset_row():
    report = FakeReport(observations=(FakeObservation(),))
    record = SurfaceRecord(receiver=VICTIM, code=VICTIM,
                           is_notification=True,
                           writes=[_write(_asset(-5))])
    finding = evaluate_token_arith(report, None, _surface([record]))
    assert finding.detected
    assert "negative" in finding.evidence


def test_token_arith_ignores_foreign_and_nonasset_writes():
    report = FakeReport(observations=(FakeObservation(),))
    record = SurfaceRecord(
        receiver=VICTIM, code=VICTIM, is_notification=True,
        writes=[
            _write(_asset(-5), code=N("eosio.token")),  # not ours
            _write(b"\xff" * 8),                        # not asset-sized
            _write(None),                               # delete
            _write(_asset(10)),                         # healthy credit
        ])
    assert not evaluate_token_arith(report, None,
                                    _surface([record])).detected


# -- permission -------------------------------------------------------------

def test_permission_fires_on_write_after_denied_has_auth():
    report = FakeReport(observations=(FakeObservation("grantrole"),))
    calls = [[HostArgCall("has_auth", (N("admin"),), 0),
              HostArgCall("db_store_i64", (VICTIM, N("roles"), VICTIM,
                                           3, 0, 8), 1)]]
    finding = evaluate_permission(
        report, None, _surface([None], calls=calls))
    assert finding.detected
    assert "grantrole" in finding.evidence


def test_permission_quiet_when_auth_granted_or_enforced():
    report = FakeReport(observations=(FakeObservation(),
                                      FakeObservation()))
    calls = [
        # has_auth said yes: the write is authorised.
        [HostArgCall("has_auth", (N("admin"),), 1),
         HostArgCall("db_store_i64", (1, 2, 3, 4, 0, 8), 1)],
        # require_auth succeeded before the write: enforced path.
        [HostArgCall("has_auth", (N("admin"),), 0),
         HostArgCall("require_auth", (N("admin"),), None),
         HostArgCall("db_update_i64", (0, 1, 0, 8), None)],
    ]
    assert not evaluate_permission(
        report, None, _surface([None, None], calls=calls)).detected


# -- notif_chain ------------------------------------------------------------

def test_notif_chain_fires_on_forwarded_write():
    report = FakeReport(observations=(
        FakeObservation(payload_kind="fake_notif"),))
    record = SurfaceRecord(receiver=VICTIM, code=N("eosio.token"),
                           is_notification=True,
                           writes=[_write(_asset(10))])
    assert evaluate_notif_chain(report, None,
                                _surface([record])).detected


def test_notif_chain_needs_the_counterfeit_payload_and_a_write():
    record = SurfaceRecord(receiver=VICTIM, code=N("eosio.token"),
                           is_notification=True,
                           writes=[_write(_asset(10))])
    # Same record under a legitimate payload: quiet.
    legit = FakeReport(observations=(FakeObservation(),))
    assert not evaluate_notif_chain(legit, None,
                                    _surface([record])).detected
    # Forwarded payload but the guard returned before any write: quiet.
    guarded = FakeReport(observations=(
        FakeObservation(payload_kind="fake_notif"),))
    silent = SurfaceRecord(receiver=VICTIM, code=N("eosio.token"),
                           is_notification=True, writes=[])
    assert not evaluate_notif_chain(guarded, None,
                                    _surface([silent])).detected


# -- data_consistency -------------------------------------------------------

def test_data_consistency_fires_on_supply_mismatch():
    state = {
        (VICTIM, VICTIM, N("stat")): {1: _stat(0)},
        (VICTIM, VICTIM, N("accounts")): {7: _asset(25)},
    }
    report = FakeReport(observations=())
    finding = evaluate_data_consistency(
        report, None, _surface(db_state=state))
    assert finding.detected
    assert "supply" in finding.evidence


def test_data_consistency_balanced_books_and_no_stat_table():
    report = FakeReport(observations=())
    balanced = {
        (VICTIM, VICTIM, N("stat")): {1: _stat(40)},
        (VICTIM, VICTIM, N("accounts")): {7: _asset(25),
                                          8: _asset(15)},
    }
    assert not evaluate_data_consistency(
        report, None, _surface(db_state=balanced)).detected
    # No stat rows: the invariant does not exist; never fire.
    ledger_only = {
        (VICTIM, VICTIM, N("accounts")): {7: _asset(25)},
    }
    assert not evaluate_data_consistency(
        report, None, _surface(db_state=ledger_only)).detected

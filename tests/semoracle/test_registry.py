"""The family registry: names, aliases, surfaces, typed errors."""

import pytest

from repro.semoracle import (ALL_FAMILIES, BASE_SURFACES, FAMILIES,
                             PAPER5, SEMANTIC_FAMILIES,
                             UnknownOracleFamily, required_surfaces,
                             resolve_oracles, semantic_names)


def test_default_is_paper_five():
    assert resolve_oracles(None) == PAPER5
    assert resolve_oracles("") == PAPER5
    assert resolve_oracles([]) == PAPER5


def test_aliases_expand_in_place():
    assert resolve_oracles("paper5") == PAPER5
    assert resolve_oracles("semantic") == SEMANTIC_FAMILIES
    assert resolve_oracles("all") == ALL_FAMILIES


def test_comma_string_and_iterable_agree():
    spec = "token_arith, permission"
    assert resolve_oracles(spec) == ("token_arith", "permission")
    assert resolve_oracles(["token_arith", "permission"]) \
        == ("token_arith", "permission")


def test_resolution_dedupes_preserving_order():
    assert resolve_oracles("permission,all,permission") \
        == ("permission",) + tuple(n for n in ALL_FAMILIES
                                   if n != "permission")


def test_unknown_family_is_typed():
    with pytest.raises(UnknownOracleFamily) as excinfo:
        resolve_oracles("token_arith,bogus")
    assert excinfo.value.family == "bogus"
    assert "bogus" in str(excinfo.value)
    assert isinstance(excinfo.value, ValueError)


def test_every_semantic_family_is_registered():
    assert set(SEMANTIC_FAMILIES) == set(FAMILIES)
    for name, family in FAMILIES.items():
        assert family.name == name
        assert family.required_surface
        assert callable(family.evaluate)


def test_required_surfaces_union():
    assert required_surfaces(PAPER5) == BASE_SURFACES
    assert required_surfaces(("permission",)) \
        == BASE_SURFACES | {"host_args"}
    assert required_surfaces(ALL_FAMILIES) \
        == BASE_SURFACES | {"host_args", "db_writes", "record_chain",
                            "db_state"}


def test_semantic_names_filters_in_order():
    assert semantic_names(ALL_FAMILIES) == SEMANTIC_FAMILIES
    assert semantic_names(PAPER5) == ()

"""Surface section codec: deterministic roundtrip, typed corruption."""

import pytest

from repro.resilience import TraceCorruption
from repro.semoracle import (DbWrite, HostArgCall, SemanticSurface,
                             SurfaceRecord)
from repro.semoracle.surface import (decode_semantic_section,
                                     encode_semantic_section)


def _interner():
    table: list[str] = []

    def intern(text: str) -> int:
        if text not in table:
            table.append(text)
        return table.index(text)

    return table, intern


def _sample_surface() -> SemanticSurface:
    return SemanticSurface(
        calls=[
            [HostArgCall("has_auth", (123,), 0),
             HostArgCall("db_store_i64", (1, 2, 3, 4, 1024, 16), 5),
             HostArgCall("eosio_assert", (1, 256), None),
             HostArgCall("f64ish", (), 2.5)],
            [],
        ],
        records=[
            SurfaceRecord(receiver=9, code=11, is_notification=True,
                          writes=[
                              DbWrite(9, 9, 3, 7, None, b"\x01" * 16),
                              DbWrite(9, 9, 3, 7, b"\x01" * 16, None),
                              DbWrite(9, 9, 3, None, None, b""),
                          ]),
            None,
        ],
        db_state={(9, 9, 3): {7: b"\x02" * 16, 8: b""},
                  (9, 1, 4): {}})


def test_section_roundtrip_exact():
    surface = _sample_surface()
    table, intern = _interner()
    payload = encode_semantic_section(surface, intern)
    decoded = decode_semantic_section(payload, lambda i: table[i],
                                      obs_count=2)
    assert decoded == surface


def test_section_encoding_is_deterministic():
    _, intern_a = _interner()
    _, intern_b = _interner()
    a = encode_semantic_section(_sample_surface(), intern_a)
    b = encode_semantic_section(_sample_surface(), intern_b)
    assert a == b


def test_observation_count_mismatch_is_corruption():
    surface = _sample_surface()
    table, intern = _interner()
    payload = encode_semantic_section(surface, intern)
    with pytest.raises(TraceCorruption):
        decode_semantic_section(payload, lambda i: table[i],
                                obs_count=3)


def test_truncated_section_is_corruption():
    surface = _sample_surface()
    table, intern = _interner()
    payload = encode_semantic_section(surface, intern)
    with pytest.raises(TraceCorruption):
        decode_semantic_section(payload[:len(payload) // 2],
                                lambda i: table[i], obs_count=2)

"""Shared fixtures for the scan-service suite.

Fault plans and scopes are process-global; every test starts and ends
clean so an injected fault can never leak into another test (or into
a daemon thread that outlives its test).  Contract fixtures are tiny
benchgen modules with a short virtual budget, so whole-service tests
stay fast.
"""

import pytest

from repro.benchgen import ContractConfig, generate_contract
from repro.engine import configure_instrumentation_cache
from repro.resilience import clear_fault_plan, set_fault_scope
from repro.smt import configure_solver_cache
from repro.wasm import encode_module

# A small real budget keeps one campaign well under a second while
# still exercising the full concolic pipeline (and reliably covering
# the fake-EOS finding the HTTP tests assert on).
FAST_TIMEOUT_MS = 4_000.0


@pytest.fixture(autouse=True)
def clean_fault_state():
    clear_fault_plan()
    set_fault_scope("")
    yield
    clear_fault_plan()
    set_fault_scope("")


@pytest.fixture(autouse=True)
def fresh_caches():
    configure_instrumentation_cache(enabled=True)
    configure_solver_cache(enabled=True)
    yield
    configure_instrumentation_cache(enabled=True)
    configure_solver_cache(enabled=True)


def contract_bytes(seed: int = 0) -> tuple[bytes, str]:
    """(wasm bytes, abi json) for one vulnerable contract; different
    ``seed`` values yield structurally distinct modules (the benchgen
    seed alone does not perturb the emitted bytes, maze depth does)."""
    generated = generate_contract(
        ContractConfig(seed=seed, fake_eos_guard=False,
                       maze_depth=2 + seed))
    return encode_module(generated.module), generated.abi.to_json()


@pytest.fixture(scope="session")
def sample_contract() -> tuple[bytes, str]:
    return contract_bytes(seed=0)


@pytest.fixture
def fast_config() -> dict:
    return {"timeout_ms": FAST_TIMEOUT_MS}

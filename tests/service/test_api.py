"""The transport-free API surface: the typed 429 schema everywhere a
submission can shed, tenant admission, shard redirects, partition
refusal, and the fleet wire verbs.

``ServiceApi.handle`` is driven directly — no sockets — so every
response shape is asserted byte-for-byte deterministically.
"""

import base64
import json

import pytest

from repro.service import (ScanService, ScanServiceConfig, ServiceApi,
                           TenantBook)

from .conftest import contract_bytes

# Every 429 the service emits must carry exactly this schema, with
# kind naming which bound shed the request.
_429_KEYS = {"error", "detail", "kind", "depth", "limit",
             "retry_after_s"}
_KINDS = {"queue", "inflight", "draining", "disk", "quota"}


def _api(tmp_path=None, tenants=None, router=None,
         **config) -> ServiceApi:
    knobs = dict(workers=1, max_depth=2, poll_s=0.02)
    knobs.update(config)
    service = ScanService(config=ScanServiceConfig(**knobs))
    return ServiceApi(service, tenants=tenants, router=router)


def _body(seed: int = 0, **extra) -> bytes:
    data, abi = contract_bytes(seed=seed)
    doc = {"module_b64": base64.b64encode(data).decode("ascii"),
           "abi": abi}
    doc.update(extra)
    return json.dumps(doc).encode("utf-8")


def _assert_429(status: int, doc: dict, kind: str) -> None:
    assert status == 429
    assert _429_KEYS.issubset(doc.keys()), \
        f"429 missing schema fields: {sorted(doc.keys())}"
    assert doc["error"] == "queue_full"
    assert doc["kind"] == kind and kind in _KINDS
    assert doc["retry_after_s"] > 0
    assert isinstance(doc["depth"], int) and isinstance(doc["limit"],
                                                        int)


# -- the typed 429 schema, per shed kind ------------------------------------

def test_queue_depth_shed_emits_the_full_429_schema():
    # Workers never started and max_inflight raised out of the way:
    # distinct modules pile up until queue depth itself is the bound.
    api = _api(max_depth=2, max_inflight=100)
    for seed in range(2):
        status, _doc = api.handle("POST", "/scans", _body(seed=seed))
        assert status == 202
    status, doc = api.handle("POST", "/scans", _body(seed=2))
    _assert_429(status, doc, "queue")


def test_inflight_budget_shed_emits_the_full_429_schema():
    api = _api(max_depth=8, max_inflight=1)
    status, _doc = api.handle("POST", "/scans", _body(seed=0))
    assert status == 202
    status, doc = api.handle("POST", "/scans", _body(seed=1))
    _assert_429(status, doc, "inflight")


def test_draining_shed_emits_the_full_429_schema():
    api = _api()
    api.service.drain(wait_s=0.1)
    status, doc = api.handle("POST", "/scans", _body(seed=0))
    _assert_429(status, doc, "draining")


def test_quota_shed_emits_the_full_429_schema_plus_tenant():
    book = TenantBook(require_key=True)
    book.register("team", "team-key", max_submissions=1)
    api = _api(tenants=book)
    status, _doc = api.handle("POST", "/scans", _body(seed=0),
                              headers={"X-Api-Key": "team-key"})
    assert status == 202 and _doc["tenant"] == "team"
    status, doc = api.handle("POST", "/scans", _body(seed=1),
                             headers={"x-api-key": "team-key"})
    _assert_429(status, doc, "quota")
    assert doc["tenant"] == "team"


# -- tenant admission -------------------------------------------------------

def test_missing_or_unknown_api_key_is_401():
    book = TenantBook(require_key=True)
    book.register("team", "team-key")
    api = _api(tenants=book)
    status, doc = api.handle("POST", "/scans", _body())
    assert status == 401 and doc["error"] == "unauthorized"
    status, doc = api.handle("POST", "/scans", _body(),
                             headers={"X-Api-Key": "nope"})
    assert status == 401 and doc["error"] == "unauthorized"
    # The body field works where custom headers are awkward.
    status, doc = api.handle("POST", "/scans",
                             _body(api_key="team-key"))
    assert status == 202


def test_optional_keys_admit_anonymous_submissions():
    book = TenantBook(require_key=False)
    api = _api(tenants=book)
    status, _doc = api.handle("POST", "/scans", _body())
    assert status == 202


# -- shard redirect ---------------------------------------------------------

def test_wrong_shard_submission_is_redirected_with_location():
    routed_keys = []

    def router(module_hash):
        routed_keys.append(module_hash)
        return "http://owner.example:8734"

    api = _api(router=router)
    status, doc = api.handle("POST", "/scans", _body())
    assert status == 307
    assert doc["error"] == "wrong_shard"
    assert doc["location"] == "http://owner.example:8734/scans"
    assert len(routed_keys) == 1 and routed_keys[0]
    # Nothing was admitted locally.
    assert api.service.stats()["submissions"] == 0


def test_owned_shard_submission_is_served_locally():
    api = _api(router=lambda module_hash: None)
    status, _doc = api.handle("POST", "/scans", _body())
    assert status == 202


# -- partition --------------------------------------------------------------

def test_partitioned_node_refuses_writes_and_serves_stale_reads():
    api = _api()
    status, admitted = api.handle("POST", "/scans", _body(seed=0))
    assert status == 202
    api.service.set_partitioned(True, "minority side")
    status, doc = api.handle("POST", "/scans", _body(seed=1))
    assert status == 503
    assert doc["error"] == "partitioned" and doc["stale"] is True
    assert doc["retry_after_s"] > 0
    status, health = api.handle("GET", "/healthz")
    assert status == 200
    assert health["status"] == "partitioned" and health["stale"]
    status, job = api.handle("GET", f"/scans/{admitted['id']}")
    assert status == 200 and job["id"] == admitted["id"]


# -- fleet wire verbs -------------------------------------------------------

def test_fleet_steal_ships_base64_recipes():
    api = _api(max_depth=8)
    for seed in range(2):
        status, _doc = api.handle("POST", "/scans", _body(seed=seed))
        assert status == 202
    status, doc = api.handle(
        "POST", "/fleet/steal",
        json.dumps({"max_jobs": 1, "thief": "fleet:peer"})
        .encode("utf-8"))
    assert status == 200 and doc["stolen"] == 1
    recipe = doc["recipes"][0]
    assert base64.b64decode(recipe["module_b64"])
    assert recipe["scan_key"] and recipe["abi"]
    assert "module" not in recipe   # raw bytes never cross the wire


def test_fleet_journal_and_replicate_round_trip(tmp_path):
    source = ScanService(
        config=ScanServiceConfig(workers=1, poll_s=0.02),
        journal=str(tmp_path / "source.jsonl"))
    source._journal_record("scan-key-1", {"verdict": {
        "module_hash": "mh", "config": {"tool": "wasai"},
        "result": {"scans": {}}}})
    source_api = ServiceApi(source)
    status, shipped = source_api.handle("GET",
                                        "/fleet/journal?cursor=0")
    assert status == 200 and len(shipped["entries"]) == 1
    assert shipped["cursor"] > 0
    # Re-shipping from the returned cursor is empty: monotonic.
    status, again = source_api.handle(
        "GET", f"/fleet/journal?cursor={shipped['cursor']}")
    assert status == 200 and again["entries"] == []
    replica_api = _api()
    status, applied = replica_api.handle(
        "POST", "/fleet/replicate",
        json.dumps({"entries": shipped["entries"]}).encode("utf-8"))
    assert status == 200 and applied["applied"] == 1
    assert replica_api.service.store.has_verdict("scan-key-1")
    # Idempotent: replay applies nothing new.
    status, rerun = replica_api.handle(
        "POST", "/fleet/replicate",
        json.dumps({"entries": shipped["entries"]}).encode("utf-8"))
    assert status == 200 and rerun["applied"] == 0


def test_fleet_partition_toggles_over_the_wire():
    api = _api()
    status, doc = api.handle(
        "POST", "/fleet/partition",
        json.dumps({"partitioned": True,
                    "reason": "drill"}).encode("utf-8"))
    assert status == 200 and doc["partitioned"] is True
    assert api.service.partitioned
    status, doc = api.handle(
        "POST", "/fleet/partition",
        json.dumps({"partitioned": False}).encode("utf-8"))
    assert status == 200 and not api.service.partitioned

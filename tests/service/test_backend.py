"""The coordinator/worker seam: hash-ring placement, the in-process
backend's typed death, steal semantics, and a child-process node
reached over real HTTP.
"""

import time

import pytest

from repro.service import (BackendUnavailable, HashRing,
                           InProcessBackend, NodePartitioned,
                           ProcessBackend, ScanService,
                           ScanServiceConfig, module_hash_of)

from .conftest import FAST_TIMEOUT_MS, contract_bytes


def _service(**overrides) -> ScanService:
    knobs = dict(workers=1, max_depth=16, poll_s=0.02,
                 default_timeout_ms=FAST_TIMEOUT_MS)
    knobs.update(overrides)
    return ScanService(config=ScanServiceConfig(**knobs))


# -- the ring ---------------------------------------------------------------

def test_ring_placement_is_deterministic_and_join_order_free():
    forward = HashRing(["n0", "n1", "n2"])
    shuffled = HashRing(["n2", "n0", "n1"])
    keys = [f"module-{i:04d}" for i in range(300)]
    assert [forward.owner(k) for k in keys] \
        == [shuffled.owner(k) for k in keys]


def test_ring_membership_change_remaps_only_moved_arcs():
    before = HashRing(["n0", "n1", "n2"])
    after = HashRing(["n0", "n1", "n2", "n3"])
    keys = [f"module-{i:04d}" for i in range(1000)]
    moved = [k for k in keys if before.owner(k) != after.owner(k)]
    # Ideal is 1/4 of the keyspace; anything near a full reshuffle
    # means placement depends on more than (membership, replicas).
    assert 0 < len(moved) < 500
    # Every remapped key landed on the new node: the old nodes'
    # remaining arcs were untouched, which is what makes rebalancing
    # on membership change deterministic and minimal.
    assert all(after.owner(k) == "n3" for k in moved)
    # Removal is the exact inverse.
    shrunk = HashRing(["n0", "n1", "n2", "n3"])
    shrunk.remove("n3")
    assert [shrunk.owner(k) for k in keys] \
        == [before.owner(k) for k in keys]


def test_ring_owners_walk_is_the_distinct_failover_order():
    ring = HashRing(["n0", "n1", "n2"])
    walk = ring.owners("some-module", 3)
    assert sorted(walk) == ["n0", "n1", "n2"]
    assert walk[0] == ring.owner("some-module")


def test_empty_ring_is_typed_unavailable():
    with pytest.raises(BackendUnavailable):
        HashRing([]).owner("key")


def test_module_hash_of_is_the_stable_shard_key(sample_contract):
    data, _abi = sample_contract
    key = module_hash_of(data)
    assert key == module_hash_of(data)
    other, _abi2 = contract_bytes(seed=1)
    assert key != module_hash_of(other)


# -- in-process backend -----------------------------------------------------

def test_inprocess_backend_round_trip():
    backend = InProcessBackend("n0", _service())
    backend.start()
    try:
        data, abi = contract_bytes(seed=0)
        doc = backend.submit(data, abi, client="seam")
        deadline = time.monotonic() + 60
        while doc.get("state") not in ("done", "failed"):
            assert time.monotonic() < deadline
            time.sleep(0.02)
            doc = backend.job(doc["id"])
        assert doc["state"] == "done" and doc.get("result")
        assert backend.health()["status"] in ("ok", "idle")
        assert backend.queue_depth() == 0
    finally:
        backend.stop()


def test_killed_inprocess_backend_is_typed_unavailable():
    backend = InProcessBackend("n0", _service())
    backend.start()
    backend.kill()
    assert not backend.alive
    data, abi = contract_bytes(seed=0)
    with pytest.raises(BackendUnavailable):
        backend.submit(data, abi)
    with pytest.raises(BackendUnavailable):
        backend.health()
    # Partition control must keep working on an unreachable node so
    # chaos can always heal what it broke.
    backend.set_partitioned(True, "drill")
    backend.set_partitioned(False)


def test_steal_takes_only_unclaimed_jobs_and_stamps_thief_claims():
    # Workers never started: every submission stays queued and
    # unclaimed, so the steal accounting is fully deterministic.
    service = _service()
    backend = InProcessBackend("n0", service)
    docs = [backend.submit(*contract_bytes(seed=seed), client="load")
            for seed in range(3)]
    assert backend.queue_depth() == 3
    recipes = backend.steal(2, thief="fleet:n1")
    assert len(recipes) == 2 and backend.queue_depth() == 1
    for recipe in recipes:
        # Self-contained: module bytes + ABI + config travel with it.
        assert recipe["module"] and recipe["abi"]
        assert recipe["scan_key"] and recipe["config"]
        victim_copy = service.job(recipe["job_id"])
        assert victim_copy.state == "stolen"
        assert victim_copy.claim.startswith("fleet:n1#")
        assert victim_copy.terminal
    stolen_ids = {recipe["job_id"] for recipe in recipes}
    survivor = [doc for doc in docs
                if doc["id"] not in stolen_ids]
    assert len(survivor) == 1
    assert service.job(survivor[0]["id"]).state == "queued"
    assert service.stats()["fleet"]["stolen_away"] == 2


def test_partitioned_service_refuses_writes_serves_stale_reads():
    service = _service()
    backend = InProcessBackend("n0", service)
    backend.start()
    try:
        data, abi = contract_bytes(seed=0)
        doc = backend.submit(data, abi)
        backend.set_partitioned(True, "minority side of a split")
        with pytest.raises(NodePartitioned) as excinfo:
            backend.submit(*contract_bytes(seed=1))
        assert excinfo.value.retry_after_s > 0
        health = backend.health()
        assert health["status"] == "partitioned"
        assert health["stale"] is True and not health["accepting"]
        # Reads keep flowing — stale-marked, never refused.
        assert backend.job(doc["id"]) is not None
        assert backend.stats()["stale"] is True
        backend.set_partitioned(False)
        assert backend.health()["stale"] is False
    finally:
        backend.stop()


# -- child-process backend --------------------------------------------------

def test_process_backend_boots_scans_and_dies_for_real(tmp_path):
    backend = ProcessBackend(
        "p0", str(tmp_path),
        config=dict(workers=1, max_depth=8, poll_s=0.02,
                    default_timeout_ms=FAST_TIMEOUT_MS))
    backend.start()
    try:
        assert backend.alive
        assert backend.health()["status"] in ("ok", "idle")
        data, abi = contract_bytes(seed=0)
        doc = backend.submit(data, abi, client="proc")
        deadline = time.monotonic() + 90
        while doc.get("state") not in ("done", "failed"):
            assert time.monotonic() < deadline
            time.sleep(0.05)
            doc = backend.job(doc["id"])
        assert doc["state"] == "done"
        backend.kill()              # SIGKILL: real process death
        assert not backend.alive
        with pytest.raises(BackendUnavailable):
            backend.health()
    finally:
        backend.stop()

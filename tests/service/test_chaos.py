"""The chaos harness itself: the quick schedule must pass end-to-end.

This is the meta-test behind the CI chaos-drill job — a live daemon
(real HTTP, real workers, real store) marched through worker kills,
disk faults and a breaker trip/recovery cycle, with the drill's own
invariant assertions doing the heavy lifting.
"""

import pytest

from repro.service import run_chaos_drill
from repro.service.chaos import CHAOS_SCHEDULES


def test_quick_chaos_drill_passes(tmp_path):
    report = run_chaos_drill("quick", keep_dir=str(tmp_path / "drill"))
    assert report.ok, report.format()
    assert [p["name"] for p in report.phases] == \
        list(CHAOS_SCHEDULES["quick"])
    # The drill's /stats snapshot proves healing actually happened —
    # a green drill with zero healing events tested nothing.
    resilience = report.stats["resilience"]
    assert resilience["worker_restarts"] >= 1
    assert resilience["breaker_trips"] >= 1
    assert resilience["breaker_recoveries"] >= 1
    assert report.stats["shed"] >= 1
    # Keep-dir post-mortem artifacts survive the run.
    assert (tmp_path / "drill" / "chaos.jsonl").exists()


def test_unknown_schedule_is_rejected():
    with pytest.raises(ValueError):
        run_chaos_drill("nonsense")


def test_report_format_names_every_phase(tmp_path):
    report = run_chaos_drill("quick", keep_dir=str(tmp_path / "d"))
    text = report.format()
    for phase in CHAOS_SCHEDULES["quick"]:
        assert phase in text
    assert "PASSED" in text
    doc = report.to_doc()
    assert doc["ok"] is True
    assert doc["schedule"] == "quick"


def test_fleet_chaos_drill_passes(tmp_path):
    report = run_chaos_drill("fleet", keep_dir=str(tmp_path / "d"))
    assert report.ok, report.format()
    assert [p["name"] for p in report.phases] == \
        list(CHAOS_SCHEDULES["fleet"])
    # The coordinator counters prove the fleet machinery actually
    # fired: work moved, a node's jobs failed over, replicas caught
    # up — a green drill with zero fleet events tested nothing.
    assert report.stats["jobs_stolen"] >= 1
    assert report.stats["failovers"] >= 1
    assert report.stats["replicated"] >= 1
    # Per-node artifacts survive for post-mortem.
    assert (tmp_path / "d" / "n0.jsonl").exists()

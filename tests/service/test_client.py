"""ServiceClient retry behavior, driven through a scripted transport.

No sockets: ``_request_once`` is replaced with a canned sequence of
responses/exceptions, and ``sleep`` is captured, so every backoff
decision is asserted deterministically.
"""

import urllib.error

import pytest

from repro.service import ServiceClient, ServiceError


class ScriptedTransport:
    """Feed the client a fixed sequence of outcomes."""

    def __init__(self, client: ServiceClient, outcomes):
        self.outcomes = list(outcomes)
        self.calls = 0
        client._request_once = self._step

    def _step(self, method, path, doc=None, extra_headers=None):
        self.calls += 1
        outcome = self.outcomes.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome


def _client(**kwargs):
    sleeps = []
    kwargs.setdefault("max_retries", 3)
    kwargs.setdefault("backoff_base_s", 0.1)
    kwargs.setdefault("backoff_cap_s", 5.0)
    client = ServiceClient("http://test.invalid", sleep=sleeps.append,
                           **kwargs)
    return client, sleeps


def _refused() -> urllib.error.URLError:
    return urllib.error.URLError(ConnectionRefusedError(111,
                                                        "refused"))


def test_429_is_retried_honoring_retry_after():
    client, sleeps = _client()
    transport = ScriptedTransport(client, [
        (429, {"error": "queue_full"}, {"Retry-After": "2"}),
        (202, {"id": "j1", "state": "queued"}, {}),
    ])
    doc = client._checked("GET", "/stats")
    assert doc == {"id": "j1", "state": "queued"}
    assert transport.calls == 2
    assert sleeps == [2.0]          # the server's hint, verbatim


def test_retry_after_is_capped_by_backoff_cap():
    client, sleeps = _client(backoff_cap_s=0.5)
    ScriptedTransport(client, [
        (429, {"error": "queue_full"}, {"Retry-After": "60"}),
        (200, {}, {}),
    ])
    client._checked("GET", "/stats")
    assert sleeps == [0.5]


def test_connection_refused_is_retried_then_succeeds():
    client, sleeps = _client()
    transport = ScriptedTransport(client, [
        _refused(), _refused(),
        (200, {"status": "ok"}, {}),
    ])
    assert client.health() == {"status": "ok"}
    assert transport.calls == 3
    assert len(sleeps) == 2
    # Exponential shape with deterministic jitter: attempt 1 waits at
    # least twice the base, and every delay stays within base*2^n*1.5.
    assert 0.1 <= sleeps[0] <= 0.15
    assert 0.2 <= sleeps[1] <= 0.3


def test_exhausted_retries_surface_typed_not_urlerror():
    client, sleeps = _client(max_retries=2)
    ScriptedTransport(client, [_refused()] * 3)
    with pytest.raises(ServiceError) as excinfo:
        client.health()
    assert excinfo.value.status == 503
    assert excinfo.value.error == "unavailable"
    assert len(sleeps) == 2         # slept between, not after, attempts


def test_non_transient_urlerror_fails_fast():
    client, sleeps = _client()
    transport = ScriptedTransport(client, [
        urllib.error.URLError(OSError("no route to host")),
    ])
    with pytest.raises(ServiceError) as excinfo:
        client.health()
    assert excinfo.value.status == 503
    assert transport.calls == 1     # no retry for a non-transient fault
    assert sleeps == []


def test_jitter_is_deterministic_per_path_and_attempt():
    client, _ = _client()
    first = client._retry_delay("/scans", 1)
    assert client._retry_delay("/scans", 1) == first    # reproducible
    assert client._retry_delay("/stats", 1) != first    # de-synchronized
    base = 0.1 * 2
    assert base <= first <= base * 1.5


def test_http_error_status_is_not_retried():
    client, sleeps = _client()
    transport = ScriptedTransport(client, [
        (400, {"error": "bad_request"}, {}),
    ])
    with pytest.raises(ServiceError) as excinfo:
        client._checked("POST", "/scans", {})
    assert excinfo.value.status == 400
    assert transport.calls == 1
    assert sleeps == []


# -- multi-endpoint failover and shard redirects ----------------------------

class FleetScriptedTransport(ScriptedTransport):
    """ScriptedTransport that also records which endpoint (or
    redirect URL) each attempt actually targeted."""

    def __init__(self, client, outcomes):
        super().__init__(client, outcomes)
        self.client = client
        self.targets = []

    def _step(self, method, path, doc=None, url=None,
              extra_headers=None):
        self.targets.append(url or self.client.base_url + path)
        return super()._step(method, path, doc)


def _fleet_client(**kwargs):
    sleeps = []
    kwargs.setdefault("max_retries", 3)
    kwargs.setdefault("backoff_base_s", 0.1)
    kwargs.setdefault("backoff_cap_s", 5.0)
    client = ServiceClient(["http://a.invalid", "http://b.invalid"],
                           sleep=sleeps.append, **kwargs)
    return client, sleeps


def test_connection_failure_rotates_to_the_next_endpoint():
    client, _sleeps = _fleet_client()
    transport = FleetScriptedTransport(client, [
        _refused(),
        (200, {"ok": True}, {}),
    ])
    assert client._checked("GET", "/stats") == {"ok": True}
    assert transport.targets == ["http://a.invalid/stats",
                                 "http://b.invalid/stats"]


def test_5xx_fails_over_when_another_endpoint_exists():
    client, _sleeps = _fleet_client()
    transport = FleetScriptedTransport(client, [
        (500, {"error": "internal"}, {}),
        (200, {"ok": True}, {}),
    ])
    assert client._checked("GET", "/stats") == {"ok": True}
    assert transport.targets == ["http://a.invalid/stats",
                                 "http://b.invalid/stats"]


def test_5xx_surfaces_immediately_on_a_single_endpoint():
    client, sleeps = _client()
    transport = ScriptedTransport(client, [
        (500, {"error": "internal"}, {}),
    ])
    with pytest.raises(ServiceError) as excinfo:
        client._checked("GET", "/stats")
    assert excinfo.value.status == 500
    assert transport.calls == 1 and sleeps == []


def test_shard_redirect_follows_the_location_header():
    client, sleeps = _client()
    transport = FleetScriptedTransport(client, [
        (307, {"error": "wrong_shard"},
         {"Location": "http://owner.invalid:8734/scans"}),
        (202, {"id": "j1", "state": "queued"}, {}),
    ])
    status, doc = client._request("POST", "/scans", {"x": 1})
    assert status == 202 and doc["id"] == "j1"
    # The redirect is routing, not failure: no backoff was paid.
    assert sleeps == []
    assert transport.targets == ["http://test.invalid/scans",
                                 "http://owner.invalid:8734/scans"]


def test_relative_redirect_stays_on_the_same_endpoint():
    client, _sleeps = _client()
    transport = FleetScriptedTransport(client, [
        (307, {"error": "wrong_shard"}, {"Location": "/scans-v2"}),
        (202, {"id": "j1", "state": "queued"}, {}),
    ])
    status, _doc = client._request("POST", "/scans", {"x": 1})
    assert status == 202
    assert transport.targets == ["http://test.invalid/scans",
                                 "http://test.invalid/scans-v2"]


def test_redirect_loops_are_bounded():
    client, _sleeps = _client(max_redirects=2)
    bounce = (307, {"error": "wrong_shard"},
              {"Location": "http://owner.invalid/scans"})
    transport = FleetScriptedTransport(client, [bounce] * 4)
    status, doc = client._request("POST", "/scans", {"x": 1})
    # Two bounces were followed; the third 307 surfaces untouched so
    # two confused nodes can never ping-pong a request forever.
    assert status == 307 and doc["error"] == "wrong_shard"
    assert transport.calls == 3


def test_api_key_travels_as_header():
    client = ServiceClient("http://test.invalid", api_key="k-123")
    captured = {}

    class _Resp:
        status = 200
        headers = {}

        def read(self):
            return b"{}"

        def __enter__(self):
            return self

        def __exit__(self, *args):
            return False

    import urllib.request

    def fake_urlopen(request, timeout=None):
        captured["headers"] = dict(request.headers)
        return _Resp()

    original = urllib.request.urlopen
    urllib.request.urlopen = fake_urlopen
    try:
        client._checked("GET", "/stats")
    finally:
        urllib.request.urlopen = original
    assert captured["headers"].get("X-api-key") == "k-123"

"""Fleet coordinator invariants: exactly-once under membership
change, zombie-claim discard after a steal, and replica catch-up over
a truncated journal.

The fleet here is three in-process nodes — the same backends the
``fleet`` chaos schedule drives — so every scenario runs real
scheduler/store/journal code with no sockets and no sleeps beyond
actual campaign time.
"""

import pytest

from repro.benchgen import ContractConfig, generate_contract
from repro.resilience import CampaignJournal
from repro.service import (FleetConfig, InProcessBackend,
                           QuotaExceeded, ScanFleet, ScanService,
                           ScanServiceConfig, TenantBook,
                           UnknownApiKey)
from repro.wasm import encode_module

from .conftest import FAST_TIMEOUT_MS

_WAIT_S = 90.0


def _contract(seed: int) -> tuple[bytes, str]:
    # Bounded maze depth (unlike conftest.contract_bytes) because the
    # shard-placement search below probes many seeds.
    generated = generate_contract(
        ContractConfig(seed=seed, fake_eos_guard=False,
                       maze_depth=2 + seed % 4))
    return encode_module(generated.module), generated.abi.to_json()


def _node(name: str, tmp_path, workers: int = 1) -> InProcessBackend:
    service = ScanService(
        store=str(tmp_path / f"{name}.db"),
        config=ScanServiceConfig(workers=workers, max_depth=32,
                                 poll_s=0.02,
                                 default_timeout_ms=FAST_TIMEOUT_MS),
        journal=CampaignJournal(tmp_path / f"{name}.jsonl"))
    return InProcessBackend(name, service)


def _seeds_for(fleet: ScanFleet, node: str, count: int,
               start: int) -> list[int]:
    seeds, seed = [], start
    while len(seeds) < count:
        data, _abi = _contract(seed)
        if fleet.owner_of(data)[1] == node:
            seeds.append(seed)
        seed += 1
        assert seed - start < 500, "pathologically skewed ring"
    return seeds


@pytest.fixture
def fleet(tmp_path):
    backends = [_node(f"n{i}", tmp_path) for i in range(3)]
    fleet = ScanFleet(backends, config=FleetConfig(
        steal_threshold=2, steal_batch=4))
    yield fleet
    fleet.stop()


# -- routing ----------------------------------------------------------------

def test_submissions_route_to_ring_owner_and_dedup_stays_sharded(fleet):
    fleet.start()
    first = {}
    for node in ("n0", "n1", "n2"):
        seed = _seeds_for(fleet, node, 1, start=0)[0]
        data, abi = _contract(seed)
        doc = fleet.submit(data, abi, client="route")
        assert doc["node"] == node
        first[node] = (seed, doc["fleet_id"])
    seed, fleet_id = first["n0"]
    done = fleet.wait(fleet_id, timeout_s=_WAIT_S)
    assert done["state"] == "done"
    again = fleet.submit(*_contract(seed), client="route-redo")
    assert again["node"] == "n0" and again["outcome"] == "cached"
    assert again["result"] == done["result"]


# -- exactly-once under membership change -----------------------------------

@pytest.mark.parametrize("kill_timing", ["inflight", "queued"])
def test_node_kill_fails_over_each_job_exactly_once(fleet,
                                                    kill_timing):
    victim = "n1"
    if kill_timing == "inflight":
        # Workers everywhere: the victim is mid-campaign when killed.
        fleet.start()
    else:
        # Workers only on the survivors: every victim job is still
        # queued (and unclaimed) at kill time — fully deterministic.
        for name, backend in fleet.backends.items():
            if name != victim:
                backend.start()
    seeds = _seeds_for(fleet, victim, 3, start=0)
    docs = [fleet.submit(*_contract(seed), client="kill-load")
            for seed in seeds]
    pre_terminal = {doc["fleet_id"]
                    for doc in docs
                    if fleet._jobs[doc["fleet_id"]].terminal_doc}
    fleet.backends[victim].kill()
    assert fleet.check_nodes() == [victim]
    for doc in docs:
        final = fleet.wait(doc["fleet_id"], timeout_s=_WAIT_S)
        assert final["state"] == "done"
        assert final["node"] != victim
        record = fleet._jobs[doc["fleet_id"]]
        expected = 0 if doc["fleet_id"] in pre_terminal else 1
        assert record.failovers == expected, \
            f"{doc['fleet_id']} failed over {record.failovers}x"
        # The survivor that answered is the ring's post-change owner.
        key = record.recipe["module_hash"]
        assert final["node"] == fleet.ring.owner(key)
        # Terminal answers are cached fleet-side: ask again, get the
        # identical doc even though the original node is gone.
        assert fleet.job(doc["fleet_id"]) == final
    assert fleet.stats()["failovers"] == len(docs) - len(pre_terminal)


def test_steal_then_zombie_claim_is_discarded(fleet):
    # No workers at all: jobs stay queued/unclaimed, so which jobs the
    # steal takes — and what the zombie later touches — is exact.
    victim = "n0"
    seeds = _seeds_for(fleet, victim, 4, start=0)
    docs = [fleet.submit(*_contract(seed), client="steal-load")
            for seed in seeds]
    victim_service = fleet.backends[victim].service
    node_jobs = [victim_service.job(
        fleet._jobs[doc["fleet_id"]].node_job_id) for doc in docs]
    zombie_token = "scan-worker-0#1"   # a long-revoked worker claim
    moved = fleet.rebalance_once()
    assert moved == 4
    for doc, job in zip(docs, node_jobs):
        assert job.state == "stolen" and job.terminal
        assert job.claim is not None and job.claim != zombie_token
        record = fleet._jobs[doc["fleet_id"]]
        assert record.node != victim and record.stolen == 1
        # The zombie wakes up and reports a result for the job it
        # thinks it still owns: the claim check throws it away.
        victim_service._job_failed(job, zombie_token,
                                   "zombie waking up late")
        assert job.state == "stolen", \
            "a revoked claim overwrote a stolen job"
    fleet.start()
    for doc in docs:
        final = fleet.wait(doc["fleet_id"], timeout_s=_WAIT_S)
        assert final["state"] == "done" and final["node"] != victim
    assert fleet.stats()["jobs_stolen"] == 4


# -- replication ------------------------------------------------------------

def test_replica_rejoin_replays_a_truncated_journal(fleet):
    fleet.start()
    seeds = _seeds_for(fleet, "n0", 2, start=0)
    results = {}
    for seed in seeds:
        doc = fleet.submit(*_contract(seed), client="replica")
        results[seed] = fleet.wait(doc["fleet_id"],
                                   timeout_s=_WAIT_S)["result"]
    # First pass ships n0's two verdicts to both peers...
    assert fleet.replicate_once() >= 4
    # ...and the advanced cursor makes the next pass a no-op.
    assert fleet.replicate_once() == 0
    # Now n2 partitions away while n0's journal is compacted down to
    # one line (crash-truncation and compaction look identical to the
    # shipping cursor: the file got shorter).
    fleet.partition(["n2"])
    journal_path = fleet.backends["n0"].service.journal.path
    lines = journal_path.read_text(encoding="utf-8").splitlines()
    assert len(lines) >= 2
    journal_path.write_text(lines[0] + "\n", encoding="utf-8")
    # The cursor is now past EOF: shipping resets to zero and replays
    # the whole journal — and idempotent application makes the replay
    # free on peers that already hold the verdict.
    entries, new_cursor = \
        fleet.backends["n0"].ship_journal(10_000_000)
    assert len(entries) == 1
    assert new_cursor == len(lines[0]) + 1
    healed_applied = fleet.heal()
    # The rejoined n2 already replicated both verdicts before the
    # partition, so replaying the truncated journal applies nothing
    # new — catch-up converged without double-writing.
    assert healed_applied == 0
    # A verdict scanned while n2 was gone DOES arrive on heal.
    fleet.partition(["n2"])
    extra_seed = _seeds_for(fleet, "n0", 3, start=0)[2]
    doc = fleet.submit(*_contract(extra_seed), client="partition-era")
    final = fleet.wait(doc["fleet_id"], timeout_s=_WAIT_S)
    assert final["node"] != "n2"
    assert fleet.heal() >= 1
    replayed = fleet.backends["n2"].submit(*_contract(extra_seed))
    assert replayed["outcome"] == "cached"
    assert replayed["result"] == final["result"]


# -- admission --------------------------------------------------------------

def test_fleet_admission_enforces_keys_rates_and_quotas(tmp_path):
    clock = {"t": 0.0}
    book = TenantBook(require_key=True, clock=lambda: clock["t"])
    book.register("team", "team-key", rate_per_s=1.0, burst=2)
    fleet = ScanFleet([_node("solo", tmp_path)], tenants=book)
    try:
        data, abi = _contract(0)
        for _ in range(2):          # the full burst fits
            fleet.submit(data, abi, api_key="team-key")
        with pytest.raises(QuotaExceeded) as excinfo:
            fleet.submit(data, abi, api_key="team-key")
        assert excinfo.value.kind == "quota"
        assert excinfo.value.retry_after_s == pytest.approx(1.0)
        clock["t"] += 1.0           # one token refills
        doc = fleet.submit(data, abi, api_key="team-key")
        assert doc["tenant"] == "team"
        with pytest.raises(UnknownApiKey):
            fleet.submit(data, abi, api_key=None)
        with pytest.raises(UnknownApiKey):
            fleet.submit(data, abi, api_key="wrong")
        assert book.snapshot()["team"]["admitted"] == 3
        assert book.snapshot()["team"]["shed"] == 1
    finally:
        fleet.stop()


def test_partition_refuses_anything_but_a_strict_minority(fleet):
    with pytest.raises(ValueError):
        fleet.partition(["n0", "n1"])
    with pytest.raises(ValueError):
        fleet.partition(["n0", "n1", "n2"])
    fleet.partition(["n2"])         # 1 of 3: allowed
    assert fleet.live_nodes() == ["n0", "n1"]
    fleet.heal()
    assert fleet.live_nodes() == ["n0", "n1", "n2"]

"""CircuitBreaker / BreakerBoard: the per-stage failure gates.

Pure state machines over an injectable clock — every transition is
driven deterministically, no sleeps.
"""

from repro.service import (BLACKBOX_GATED_STAGES, BreakerBoard,
                           CircuitBreaker)


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _breaker(clock, threshold=3, cooldown_s=10.0, max_cooldown_s=60.0):
    return CircuitBreaker("solve", threshold=threshold,
                          cooldown_s=cooldown_s,
                          max_cooldown_s=max_cooldown_s, clock=clock)


def test_trips_only_after_consecutive_threshold():
    clock = FakeClock()
    breaker = _breaker(clock)
    assert breaker.record_failure() is False
    assert breaker.record_failure() is False
    assert breaker.state == "closed"
    assert breaker.record_failure() is True     # third consecutive
    assert breaker.state == "open"
    assert breaker.trips == 1


def test_success_resets_the_consecutive_count():
    clock = FakeClock()
    breaker = _breaker(clock)
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_success()
    # The streak restarted: two more failures are not enough.
    breaker.record_failure()
    assert breaker.record_failure() is False
    assert breaker.state == "closed"


def test_cooldown_half_opens_and_probe_slot_is_single():
    clock = FakeClock()
    breaker = _breaker(clock, threshold=1, cooldown_s=10.0)
    breaker.record_failure()
    assert breaker.state == "open"
    assert breaker.try_probe() is False         # still cooling down
    clock.advance(10.0)
    assert breaker.state == "half_open"
    assert breaker.try_probe() is True          # exactly one probe
    assert breaker.try_probe() is False         # slot already taken


def test_probe_success_closes_and_resets_cooldown():
    clock = FakeClock()
    breaker = _breaker(clock, threshold=1, cooldown_s=10.0)
    breaker.record_failure()
    clock.advance(10.0)
    assert breaker.try_probe()
    assert breaker.record_success() is True
    assert breaker.state == "closed"
    assert breaker.recoveries == 1
    assert breaker.cooldown_s == 10.0           # back to the base


def test_probe_failure_reopens_with_doubled_capped_cooldown():
    clock = FakeClock()
    breaker = _breaker(clock, threshold=1, cooldown_s=10.0,
                       max_cooldown_s=25.0)
    breaker.record_failure()                    # open, cooldown 10
    clock.advance(10.0)
    assert breaker.record_failure() is True     # failed probe: reopen
    assert breaker.cooldown_s == 20.0
    clock.advance(20.0)
    assert breaker.record_failure() is True
    assert breaker.cooldown_s == 25.0           # capped, not 40
    assert breaker.trips == 3


def test_board_forces_blackbox_only_for_gated_stages():
    clock = FakeClock()
    board = BreakerBoard(threshold=1, cooldown_s=10.0, clock=clock)
    # A broken deploy stage does not gate the symbolic side.
    board.record_failure("deploy")
    assert board.open_stages() == ["deploy"]
    assert board.force_blackbox() is False
    # A broken solver does.
    board.record_failure("solve")
    assert board.force_blackbox() is True
    assert set(board.open_stages()) == {"deploy", "solve"}


def test_board_half_open_lets_exactly_one_probe_through():
    clock = FakeClock()
    board = BreakerBoard(threshold=1, cooldown_s=10.0, clock=clock)
    board.record_failure("solve")
    clock.advance(10.0)
    # First caller of the half-open window is the probe (not forced);
    # everyone else in the window stays black-box.
    assert board.force_blackbox() is False
    assert board.force_blackbox() is True
    board.record_success("solve")
    assert board.force_blackbox() is False
    assert board.snapshot()["solve"]["state"] == "closed"


def test_gated_stage_list_matches_degradable_taxonomy():
    from repro.resilience import DEGRADABLE_STAGES
    assert set(BLACKBOX_GATED_STAGES) <= set(DEGRADABLE_STAGES)

"""End-to-end daemon tests over real sockets (ephemeral ports).

The headline scenario is the service's acceptance bar: two concurrent
clients submit the same module; exactly one fuzzing campaign runs,
both receive the identical verdict, and ``GET /stats`` shows the
coalesce hit, the queue draining back to zero and non-zero p50/p95
latency.
"""

import base64
import json
import threading
import urllib.request

import pytest

from repro.resilience import Fault, install_fault_plan
from repro.service import (ScanService, ScanServiceConfig,
                           ServiceClient, ServiceError, make_server)

from .conftest import FAST_TIMEOUT_MS


@pytest.fixture
def daemon(tmp_path):
    """A real daemon on an ephemeral port; torn down afterwards."""
    service = ScanService(
        store=str(tmp_path / "store.db"),
        config=ScanServiceConfig(workers=2, max_depth=8, poll_s=0.02,
                                 default_timeout_ms=FAST_TIMEOUT_MS))
    server = make_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.05},
                              daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield ServiceClient(f"http://{host}:{port}"), service
    server.shutdown()
    server.server_close()
    service.stop(wait_s=5)
    thread.join(timeout=5)


def test_healthz(daemon):
    client, _ = daemon
    assert client.health()["status"] == "ok"


def test_unknown_routes_and_jobs_are_404(daemon):
    client, _ = daemon
    with pytest.raises(ServiceError) as excinfo:
        client.status("nonexistent")
    assert excinfo.value.status == 404
    status, _doc = client._request("GET", "/nope")
    assert status == 404


def test_bad_request_bodies_are_400(daemon):
    client, _ = daemon
    status, doc = client._request("POST", "/scans", {"abi": "{}"})
    assert (status, doc["error"]) == (400, "bad_request")
    status, doc = client._request(
        "POST", "/scans", {"module_b64": "!!!not-base64", "abi": "{}"})
    assert (status, doc["error"]) == (400, "bad_request")


def test_hostile_upload_rejected_at_admission(daemon, sample_contract):
    client, service = daemon
    _, abi = sample_contract
    with pytest.raises(ServiceError) as excinfo:
        client.submit(b"\x00asm\xff\xff\xff\xffgarbage", abi)
    assert excinfo.value.status == 400
    assert excinfo.value.error == "malformed_module"
    assert service.stats()["admission_rejected"] == 1


def test_two_concurrent_clients_share_one_campaign(daemon,
                                                   sample_contract):
    client, service = daemon
    data, abi = sample_contract
    # Keep the single campaign open long enough that the second
    # client's submission provably arrives while it is in flight.
    install_fault_plan(Fault(stage="fuzz", kind="hang", hang_s=0.4))
    results: dict[str, dict] = {}
    errors: list[Exception] = []
    gate = threading.Barrier(2)

    def one_client(name: str) -> None:
        try:
            gate.wait(timeout=10)
            own = ServiceClient(client.base_url)
            doc = own.submit(data, abi, client=name)
            results[name] = own.wait(doc["id"], timeout_s=60)
        except Exception as exc:  # noqa: BLE001 - collected for assert
            errors.append(exc)

    threads = [threading.Thread(target=one_client, args=(name,))
               for name in ("alice", "bob")]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    # Both clients got a terminal verdict, and it is identical.
    alice, bob = results["alice"], results["bob"]
    assert alice["state"] == bob["state"] == "done"
    assert alice["id"] == bob["id"]
    assert alice["verdict"] == bob["verdict"]
    assert alice["result"] == bob["result"]
    assert alice["verdict"]["vulnerable"] is True

    stats = client.stats()
    assert stats["completed"] == 1          # exactly one campaign ran
    assert stats["dedup"]["coalesce_hits"] == 1
    assert stats["queue_depth"] == 0
    assert stats["running"] == 0
    job_latency = stats["latency"]["job"]
    assert job_latency["p50_s"] > 0
    assert job_latency["p95_s"] > 0

    # A later duplicate submit is a dedup hit served from the store.
    dup = client.submit(data, abi, client="carol")
    assert dup["outcome"] == "cached"
    assert dup["state"] == "done"
    assert dup["verdict"] == alice["verdict"]
    assert client.stats()["dedup"]["cache_hits"] == 1


def test_submit_returns_json_with_correct_content_type(
        daemon, sample_contract):
    client, _ = daemon
    data, abi = sample_contract
    body = json.dumps({
        "module_b64": base64.b64encode(data).decode("ascii"),
        "abi": abi,
    }).encode()
    request = urllib.request.Request(
        client.base_url + "/scans", data=body,
        headers={"Content-Type": "application/json"}, method="POST")
    with urllib.request.urlopen(request, timeout=30) as resp:
        assert resp.status in (200, 202)
        assert resp.headers["Content-Type"] == "application/json"
        doc = json.loads(resp.read())
    assert doc["state"] in ("queued", "running", "done")


@pytest.fixture
def fleet_daemon(tmp_path):
    """A daemon with tenant admission and a shard router installed."""
    from repro.service import TenantBook
    book = TenantBook(require_key=True)
    book.register("team", "team-key", max_submissions=1)
    service = ScanService(
        store=str(tmp_path / "store.db"),
        config=ScanServiceConfig(workers=1, max_depth=8, poll_s=0.02,
                                 default_timeout_ms=FAST_TIMEOUT_MS))
    redirect = {"to": None}
    server = make_server(service, host="127.0.0.1", port=0,
                         tenants=book,
                         router=lambda module_hash: redirect["to"])
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.05},
                              daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield ServiceClient(f"http://{host}:{port}"), service, redirect
    server.shutdown()
    server.server_close()
    service.stop(wait_s=5)


def test_fleet_headers_cross_the_wire(fleet_daemon, sample_contract):
    client, service, redirect = fleet_daemon
    data, abi = sample_contract
    body = json.dumps({
        "module_b64": base64.b64encode(data).decode("ascii"),
        "abi": abi,
    }).encode()

    def post(headers):
        request = urllib.request.Request(
            client.base_url + "/scans", data=body, method="POST",
            headers={"Content-Type": "application/json", **headers})
        try:
            with urllib.request.urlopen(request, timeout=30) as resp:
                return resp.status, dict(resp.headers), \
                    json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            return exc.code, dict(exc.headers), \
                json.loads(exc.read())

    # No key → 401; wrong-shard → 307 with a real Location header;
    # over-quota → typed 429 with kind=quota and Retry-After.
    status, _headers, doc = post({})
    assert status == 401 and doc["error"] == "unauthorized"
    redirect["to"] = "http://owner.invalid:8734"
    status, headers, doc = post({"X-Api-Key": "team-key"})
    assert status == 307 and doc["error"] == "wrong_shard"
    assert headers["Location"] == "http://owner.invalid:8734/scans"
    # The redirect consumed no quota: this same admission succeeds
    # once the router says the shard is local again...
    redirect["to"] = None
    status, _headers, doc = post({"X-Api-Key": "team-key"})
    assert status in (200, 202)
    # ...and the next one is the 2nd against a 1-submission quota.
    status, headers, doc = post({"X-Api-Key": "team-key"})
    assert status == 429 and doc["kind"] == "quota"
    assert int(headers["Retry-After"]) >= 1
    # Partitioned: writes are 503 + Retry-After, stale-marked.
    service.set_partitioned(True, "split")
    status, headers, doc = post({"X-Api-Key": "team-key"})
    assert status == 503 and doc["error"] == "partitioned"
    assert doc["stale"] is True and "Retry-After" in headers

"""Storage integrity: row checksums, corruption detection, the
quarantine-and-rebuild path and the disk budget.

Corruption is seeded through the deterministic ``store`` data-plane
fault (the write lands with a poisoned checksum, exactly like bit rot
under the row) — no sleeps, no randomness.
"""

import pytest

from repro.resilience import CampaignJournal, Fault, install_fault_plan
from repro.service import (ArtifactStore, ScanService, ScanServiceConfig,
                           StoreBudgetExceeded, StoreCorruption,
                           content_checksum)


def test_content_checksum_is_length_prefixed():
    # "ab"+"c" and "a"+"bc" concatenate identically; the length prefix
    # must still tell them apart (classic ambiguity bug).
    assert content_checksum("ab", "c") != content_checksum("a", "bc")
    assert content_checksum(b"x", "y") == content_checksum(b"x", "y")


def test_clean_roundtrip_verifies(tmp_path):
    store = ArtifactStore(tmp_path / "a.db")
    store.put_module("h1", b"\x00asm")
    store.put_verdict("k1", "h1", {"tool": "wasai"}, {"scans": {}})
    assert store.get_module("h1") == b"\x00asm"
    assert store.get_verdict("k1") == {"scans": {}}
    report = store.verify_integrity()
    assert all(not entry["corrupt"] for entry in report.values())
    store.close()


def test_corrupt_row_raises_typed_on_read(tmp_path):
    store = ArtifactStore(tmp_path / "a.db")
    install_fault_plan(Fault(stage="store", kind="corrupt", times=1))
    store.put_verdict("k1", "h1", {}, {"scans": {}})
    with pytest.raises(StoreCorruption) as excinfo:
        store.get_verdict("k1")
    assert excinfo.value.table == "verdicts"
    # Other rows are untouched.
    store.put_module("h2", b"ok")
    assert store.get_module("h2") == b"ok"
    report = store.verify_integrity()
    assert len(report["verdicts"]["corrupt"]) == 1
    assert not report["modules"]["corrupt"]
    store.close()


def test_mangled_sqlite_image_raises_typed(tmp_path):
    path = tmp_path / "a.db"
    store = ArtifactStore(path)
    store.put_module("h1", b"data")
    store.close()
    raw = bytearray(path.read_bytes())
    raw[0:16] = b"not a database!!"
    path.write_bytes(bytes(raw))
    with pytest.raises(StoreCorruption):
        reopened = ArtifactStore(path)
        reopened.get_module("h1")


def test_disk_budget_is_typed_backpressure(tmp_path):
    budget = 128 * 1024     # leaves headroom over the empty-schema size
    store = ArtifactStore(tmp_path / "a.db", max_bytes=budget)
    with pytest.raises(StoreBudgetExceeded) as excinfo:
        store.put_module("big", b"\x7f" * (512 * 1024))
    assert excinfo.value.budget_bytes == budget
    # The store keeps serving within budget.
    store.put_module("small", b"ok")
    assert store.get_module("small") == b"ok"
    store.close()


def _seeded_service(tmp_path) -> tuple[ScanService, str]:
    """A stopped service whose store holds one journaled verdict whose
    at-rest row is corrupt (seeded via the store fault)."""
    service = ScanService(
        store=str(tmp_path / "s.db"),
        config=ScanServiceConfig(workers=1),
        journal=CampaignJournal(tmp_path / "s.jsonl"))
    verdict = {"scans": {}, "degraded": [], "errors": {}}
    install_fault_plan(Fault(stage="store", kind="corrupt", times=1))
    service.store.put_verdict("key-1", "hash-1", {"tool": "wasai"},
                              verdict)
    service._journal_record("key-1", {"verdict": {
        "module_hash": "hash-1", "config": {"tool": "wasai"},
        "result": verdict}})
    return service, "key-1"


def test_service_quarantines_and_rebuilds_from_journal(tmp_path):
    service, key = _seeded_service(tmp_path)
    try:
        # The healing wrapper detects the corrupt row mid-read, swaps
        # in a fresh store rebuilt from the journal and retries.
        doc = service._healed(lambda: service.store.get_verdict(key))
        assert doc == {"scans": {}, "degraded": [], "errors": {}}
        corpses = list(tmp_path.glob("s.db.corrupt-*"))
        assert len(corpses) == 1        # the corrupt image, kept aside
        resilience = service.stats()["resilience"]
        assert resilience["integrity_repairs"] == 1
        assert resilience["store_recoveries"] == 1
        # The rebuilt store is fully clean.
        report = service.store.verify_integrity()
        assert all(not entry["corrupt"] for entry in report.values())
    finally:
        service.store.close()


def test_integrity_sweep_repairs_on_demand(tmp_path):
    service, key = _seeded_service(tmp_path)
    try:
        sweep = service.integrity_sweep(repair=True)
        assert sweep["repaired"] is True
        assert sweep["corrupt_rows"] == 0
        assert service.store.get_verdict(key) is not None
        # A second sweep finds a clean store and repairs nothing.
        again = service.integrity_sweep(repair=True)
        assert again["repaired"] is False
        assert again["corrupt_rows"] == 0
    finally:
        service.store.close()


def test_disk_budget_sheds_submission_typed(tmp_path, sample_contract):
    from repro.service import QueueFull
    data, abi = sample_contract
    service = ScanService(
        store=str(tmp_path / "s.db"),
        config=ScanServiceConfig(workers=1, store_max_bytes=4096))
    try:
        with pytest.raises(QueueFull) as excinfo:
            service.submit_bytes(data, abi)
        assert excinfo.value.kind == "disk"
        assert excinfo.value.retry_after_s > 0
        assert service.stats()["shed"] == 1
    finally:
        service.store.close()

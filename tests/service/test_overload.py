"""Overload robustness: deadlines, adaptive admission, brownout.

Three layers under test.  The :class:`OverloadController` is a pure
state machine over a fake clock, so AIMD sizing, the pressure ladder,
drain-rate Retry-After and cost-based shedding are asserted without a
single sleep.  The queue's deadline/TTL sweep and deadline-aware
stealing run against an idle :class:`JobQueue`.  The service-level
tests drive real campaigns (tiny budgets) to pin the end-to-end
contract: an expired caller deadline never buys a fresh campaign, a
browned-out verdict is honestly tagged and never cached, and drain /
resume cannot resurrect a job whose caller stopped waiting.
"""

import time

import pytest

from repro.metrics import ThroughputStats
from repro.resilience import CampaignJournal, Fault, install_fault_plan
from repro.service import ScanService, ScanServiceConfig, ServiceApi
from repro.service.overload import SHED_KINDS, OverloadController
from repro.service.queue import Job, JobQueue

from .conftest import FAST_TIMEOUT_MS, contract_bytes
from .test_scheduler import _service, _wait_terminal


class FakeClock:
    def __init__(self, start: float = 1000.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _controller(**kwargs) -> "tuple[OverloadController, FakeClock]":
    clock = FakeClock()
    kwargs.setdefault("target_p95_s", 1.0)
    kwargs.setdefault("adjust_interval_s", 1.0)
    controller = OverloadController(8, 16, clock=clock, **kwargs)
    return controller, clock


# -- the controller: AIMD, ladder, Retry-After, cost shed -------------------

def test_aimd_halves_on_breach_and_recovers_additively():
    controller, clock = _controller()
    assert controller.effective_inflight() == 8
    controller.observe_latency(3.0)     # p95 = 3x the 1 s target
    for expected in (4, 2, 1, 1):       # halves, floored at min=1
        clock.advance(1.0)
        controller.update(queue_depth=4, inflight=2)
        assert controller.effective_inflight() == expected
    assert controller.adjustments == 3  # the floor tick changes nothing
    # The breach ages out of the sample window; the limit climbs back
    # one step per adjust interval — additive, not a jump.
    clock.advance(controller.latency_window_s + 1.0)
    seen = []
    for _ in range(8):
        clock.advance(1.0)
        controller.update(queue_depth=0, inflight=0)
        seen.append(controller.effective_inflight())
    assert seen == [2, 3, 4, 5, 6, 7, 8, 8]


def test_effective_depth_scales_with_the_inflight_squeeze():
    controller, clock = _controller()
    assert controller.effective_depth() == 16
    controller.observe_latency(3.0)
    clock.advance(1.0)
    controller.update(queue_depth=0, inflight=1)
    assert controller.effective_inflight() == 4
    assert controller.effective_depth() == 8    # proportional
    for _ in range(4):
        clock.advance(1.0)
        controller.update(queue_depth=0, inflight=1)
    assert controller.effective_depth() == 2    # squeezed to min=1


def test_pressure_ladder_tracks_load_and_breach():
    controller, clock = _controller(target_p95_s=100.0)
    assert controller.update(0, 0) == "normal"
    # capacity = 8 + 16 = 24 while nothing breaches the huge target.
    assert controller.update(10, 5) == "elevated"    # load 0.62
    assert controller.update(16, 7) == "saturated"   # load 0.96
    assert controller.update(16, 8) == "saturated"   # full, no breach
    # A >=2x SLO breach while full tops the ladder out.
    controller.target_p95_s = 1.0
    controller.observe_latency(2.5)
    clock.advance(1.0)
    assert controller.update(16, 8) == "shedding"
    # And it walks back down once the backlog drains and the breach
    # ages out — no operator reset anywhere.
    clock.advance(controller.latency_window_s + 1.0)
    for _ in range(16):
        clock.advance(1.0)
        controller.update(0, 0)
    assert controller.pressure == "normal"
    assert controller.effective_inflight() == controller.base_inflight


def test_retry_after_is_the_measured_drain_time():
    controller, clock = _controller()
    # No completions observed yet: the default hint, never zero.
    assert controller.retry_after_s(5) == controller.default_retry_after_s
    for _ in range(10):                 # 2 completions/s
        clock.advance(0.5)
        controller.observe_completion()
    hint = controller.retry_after_s(pending=9)
    # 10 pending-equivalents at ~2/s: about five seconds, and honest.
    assert 4.0 <= hint <= 6.5
    assert controller.retry_after_s(0) >= controller.min_retry_after_s
    assert controller.retry_after_s(10_000) \
        == controller.max_retry_after_s


def test_cost_shed_spares_normal_and_scales_with_priority():
    controller, _clock = _controller()
    big = OverloadController.admission_cost(4 * 1024 * 1024, 8)
    small = OverloadController.admission_cost(64 * 1024, 5)
    assert big > small >= 5.0
    # Normal pressure never cost-sheds, whatever the size.
    controller.pressure = "normal"
    assert not controller.should_shed_cost(big, priority=-8)
    # Saturated: allowance 32 * 0.25 = 8 at priority 0, doubling per
    # priority step — the biggest least-important work goes first.
    controller.pressure = "saturated"
    assert controller.should_shed_cost(big, priority=0)
    assert not controller.should_shed_cost(big, priority=4)
    assert not controller.should_shed_cost(small, priority=0)
    assert controller.should_shed_cost(small, priority=-2)
    # Shedding refuses everything through this gate.
    controller.pressure = "shedding"
    assert controller.should_shed_cost(0.1, priority=8)


def test_snapshot_carries_the_operator_story():
    controller, _clock = _controller()
    snap = controller.snapshot()
    assert snap["pressure"] == "normal"
    assert snap["effective_inflight"] == snap["base_inflight"] == 8
    assert snap["levels"] == ["normal", "elevated", "saturated",
                              "shedding"]
    assert set(SHED_KINDS) == {"queue", "inflight", "deadline",
                               "quota", "disk", "brownout",
                               "draining"}


# -- the queue: idle sweep and deadline-aware stealing ----------------------

def _queued_job(job_id: str, *, ttl_s=None, deadline_epoch_s=None,
                priority: int = 0) -> Job:
    return Job(job_id=job_id, client="c", scan_key=f"k-{job_id}",
               module_hash="m", config={}, priority=priority,
               ttl_s=ttl_s, deadline_epoch_s=deadline_epoch_s)


def test_idle_queue_sweep_expires_without_a_get():
    reaped = []
    clock = FakeClock()
    wall = FakeClock(start=5_000.0)
    queue = JobQueue(max_depth=8, on_expired=reaped.append,
                     clock=clock, wall_clock=wall)
    queue.put(_queued_job("ttl", ttl_s=1.0))
    queue.put(_queued_job("dead", deadline_epoch_s=wall.now + 2.0))
    queue.put(_queued_job("live"))
    assert queue.sweep_expired() == 0   # nothing stale yet
    clock.advance(1.5)                  # TTL ages on the monotonic clock
    wall.advance(2.5)                   # the deadline on the wall clock
    assert queue.sweep_expired() == 2   # no get() ever happened
    assert {job.job_id for job in reaped} == {"ttl", "dead"}
    # The two staleness kinds are book-kept separately.
    assert queue.expired == 1
    assert queue.deadline_expired == 1
    assert queue.depth == 1


def test_steal_skips_jobs_whose_deadline_is_hopeless():
    wall = FakeClock(start=5_000.0)
    queue = JobQueue(max_depth=8, wall_clock=wall)
    queue.put(_queued_job("doomed", deadline_epoch_s=wall.now + 0.5))
    queue.put(_queued_job("roomy", deadline_epoch_s=wall.now + 60.0))
    queue.put(_queued_job("free"))
    stolen = queue.steal(3, min_headroom_s=2.0)
    assert {job.job_id for job in stolen} == {"roomy", "free"}
    assert queue.depth == 1             # the doomed one stays home


# -- the service: deadlines end to end --------------------------------------

def test_expired_deadline_is_terminal_at_admission(sample_contract):
    data, abi = sample_contract
    service = _service(start=False)
    try:
        submission = service.submit_bytes(
            data, abi, deadline_epoch_s=time.time() - 1.0)
        job = submission.job
        assert submission.outcome == "deadline_exceeded"
        assert job.state == "deadline_exceeded" and job.terminal
        assert job.result_doc is None
        assert "deadline" in (job.error or "")
        stats = service.stats()
        # No fresh campaign budget was spent on it: nothing queued,
        # nothing persisted, and the shed books name the cut.
        assert stats["queue_depth"] == 0
        assert stats["deadline_exceeded"] == 1
        assert stats["shed_by_kind"].get("deadline") == 1
        assert service.store.get_verdict(job.scan_key) is None
    finally:
        service.stop(wait_s=1)


def test_cache_hit_served_even_past_the_deadline(sample_contract):
    data, abi = sample_contract
    service = _service()
    try:
        first = service.submit_bytes(data, abi)
        _wait_terminal(service, first.job.job_id)
        # The deadline gate sits *after* dedup: a stored verdict costs
        # nothing to serve, so an expired caller still gets it.
        hit = service.submit_bytes(data, abi,
                                   deadline_epoch_s=time.time() - 1.0)
        assert hit.outcome == "cached"
        assert hit.job.result_doc is not None
    finally:
        service.stop(wait_s=5)


def test_queued_job_cut_by_the_idle_housekeeping_sweep(
        sample_contract):
    data, abi = sample_contract
    # No workers, no housekeeper thread: the sweep is driven by hand,
    # exactly like the daemon's housekeeping tick would.
    service = _service(start=False, housekeeping_s=None)
    try:
        submission = service.submit_bytes(
            data, abi, deadline_epoch_s=time.time() + 0.05)
        assert submission.outcome == "queued"
        time.sleep(0.08)
        service.housekeeping_once()
        job = service.job(submission.job.job_id)
        assert job.state == "deadline_exceeded"
        assert job.result_doc is None
        stats = service.stats()
        assert stats["queue_depth"] == 0
        assert stats["deadline_exceeded"] == 1
    finally:
        service.stop(wait_s=1)


def test_deadline_cut_mid_campaign_yields_no_verdict(sample_contract):
    data, abi = sample_contract
    # The campaign demonstrably *starts* (the fuzz stage stalls half a
    # second, far past the caller's 0.1 s budget) and is then cut at
    # the next round boundary — never run to completion.
    install_fault_plan(Fault(stage="fuzz", kind="hang", hang_s=0.5,
                             match="impatient"))
    service = _service(workers=1)
    try:
        submission = service.submit_bytes(
            data, abi, client="impatient",
            deadline_epoch_s=time.time() + 0.1)
        job = _wait_terminal(service, submission.job.job_id)
        assert job.state == "deadline_exceeded"
        assert job.result_doc is None
        # A partial campaign must never be cached as the answer.
        assert service.store.get_verdict(job.scan_key) is None
        # And a caller's clock running out is not a service fault: no
        # breaker state, health stays green.
        assert service.health()["status"] == "ok"
    finally:
        service.stop(wait_s=5)


def test_deadline_is_not_key_material(sample_contract):
    data, abi = sample_contract
    service = _service()
    try:
        first = service.submit_bytes(data, abi)
        _wait_terminal(service, first.job.job_id)
        # Same module, now with a (generous) deadline: same scan key,
        # so the stored verdict is simply served.
        again = service.submit_bytes(
            data, abi, deadline_epoch_s=time.time() + 300.0)
        assert again.outcome == "cached"
        assert again.job.scan_key == first.job.scan_key
    finally:
        service.stop(wait_s=5)


# -- the service: brownout degradation --------------------------------------

def test_brownout_tags_provenance_and_never_caches(sample_contract):
    data, abi = sample_contract
    service = _service(workers=1, housekeeping_s=None)
    try:
        # Pin the ladder at saturated: dispatch shrinks the budget,
        # forces black-box and stamps the verdict's provenance.
        service.overload.pressure = "saturated"
        first = service.submit_bytes(data, abi)
        job = _wait_terminal(service, first.job.job_id)
        assert job.state == "done"
        assert job.brownout == "saturated"
        prov = job.result_doc.get("provenance") or {}
        assert prov.get("pressure") == "saturated"
        # Browned-out answers are honest but weaker — never persisted
        # as the module's verdict of record.
        assert service.store.get_verdict(job.scan_key) is None
        assert service.stats()["browned_out"] == 1

        # Pressure recovers: the same module now runs the full
        # pipeline, untagged, and this verdict *is* cached.
        service.overload.pressure = "normal"
        full = service.submit_bytes(data, abi)
        assert full.outcome == "queued"     # the brownout run isn't reused
        job2 = _wait_terminal(service, full.job.job_id)
        assert job2.state == "done"
        prov2 = job2.result_doc.get("provenance") or {}
        assert "pressure" not in prov2
        assert service.store.get_verdict(job2.scan_key) is not None
    finally:
        service.stop(wait_s=5)


def test_saturation_serves_stored_traces_by_replay(sample_contract):
    data, abi = sample_contract
    service = _service(workers=1, capture_traces=True,
                       housekeeping_s=None)
    try:
        first = service.submit_bytes(data, abi)
        job = _wait_terminal(service, first.job.job_id)
        assert service.store.get_trace(job.scan_key) is not None
        # Lose the verdict but keep the trace (e.g. an oracle-version
        # sweep dropped it); under saturation the daemon answers by
        # pure oracle replay instead of refusing or re-fuzzing.
        service.store.delete_verdict(job.scan_key)
        service.overload.pressure = "saturated"
        replayed = service.submit_bytes(data, abi)
        assert replayed.outcome == "replayed"
        assert replayed.job.state == "done"
        doc = replayed.job.result_doc
        prov = doc.get("provenance") or {}
        assert prov.get("source") == "replay"
        assert prov.get("pressure") == "saturated"
        assert doc["scans"].keys() == job.result_doc["scans"].keys()
        assert service.stats()["replay_served"] == 1
        # Replay-served answers are ephemeral too: no verdict row.
        assert service.store.get_verdict(job.scan_key) is None
    finally:
        service.stop(wait_s=5)


def test_shedding_pressure_refuses_with_typed_brownout_429(
        sample_contract):
    data, abi = sample_contract
    from repro.service import QueueFull
    service = _service(start=False, housekeeping_s=None)
    try:
        service.overload.pressure = "shedding"
        with pytest.raises(QueueFull) as excinfo:
            service.submit_bytes(data, abi)
        assert excinfo.value.kind == "brownout"
        assert excinfo.value.retry_after_s > 0
        stats = service.stats()
        assert stats["shed"] == 1
        assert stats["shed_by_kind"].get("brownout") == 1
    finally:
        service.stop(wait_s=1)


# -- drain racing a deadline (the SIGTERM story) ----------------------------

def test_drain_never_resurrects_an_expired_deadline(tmp_path):
    """SIGTERM races caller deadlines: a queued job whose deadline
    already passed is finalized ``deadline_exceeded`` at drain (not
    checkpointed), one whose deadline expires *while the daemon is
    down* is tombstoned at resume — and the one live job is replayed
    exactly once, keeping its original deadline."""
    journal = CampaignJournal(tmp_path / "drain.jsonl")
    service = _service(tmp_path, journal=journal, start=False,
                       housekeeping_s=None)
    data1, abi1 = contract_bytes(seed=1)
    data2, abi2 = contract_bytes(seed=2)
    data3, abi3 = contract_bytes(seed=3)
    try:
        already = service.submit_bytes(
            data1, abi1, deadline_epoch_s=time.time() + 0.02)
        racing = service.submit_bytes(
            data2, abi2, deadline_epoch_s=time.time() + 0.3)
        live = service.submit_bytes(
            data3, abi3, deadline_epoch_s=time.time() + 300.0)
        time.sleep(0.05)                # the first deadline passes
        checkpointed = service.drain(wait_s=1)
        # Only the two still-live jobs were checkpointed; the expired
        # one became terminal instead of being written to disk.
        assert checkpointed == 2
        assert already.job.state == "deadline_exceeded"
        assert service.stats()["deadline_exceeded"] == 1
    finally:
        service.store.close()

    time.sleep(0.3)                     # the racing deadline expires
    resumed = _service(tmp_path, journal=journal, start=False,
                       housekeeping_s=None)
    try:
        # Exactly one checkpoint is still worth running; the expired
        # one is tombstoned in the journal, not re-queued.
        assert resumed.resume_from_journal() == 1
        assert resumed.stats()["queue_depth"] == 1
        with resumed._lock:
            jobs = list(resumed._jobs.values())
        assert len(jobs) == 1
        assert jobs[0].scan_key == live.job.scan_key
        # The caller's deadline rode through drain and resume.
        assert jobs[0].deadline_epoch_s is not None
        assert jobs[0].deadline_epoch_s \
            == pytest.approx(live.job.deadline_epoch_s)
        # Exactly once: nothing left for a second resume, and the
        # expired checkpoint stays dead.
        assert resumed.resume_from_journal() == 0
        resumed.start()
        assert _wait_terminal(resumed, jobs[0].job_id).state == "done"
    finally:
        resumed.stop(wait_s=5)


# -- the HTTP edge: X-Deadline-Ms -------------------------------------------

def _submit_body(seed: int = 0, **extra) -> bytes:
    import base64
    import json
    data, abi = contract_bytes(seed=seed)
    doc = {"module_b64": base64.b64encode(data).decode("ascii"),
           "abi": abi}
    doc.update(extra)
    return json.dumps(doc).encode("utf-8")


def _api(**config) -> ServiceApi:
    knobs = dict(workers=1, max_depth=8, poll_s=0.02,
                 default_timeout_ms=FAST_TIMEOUT_MS,
                 housekeeping_s=None)
    knobs.update(config)
    return ServiceApi(ScanService(config=ScanServiceConfig(**knobs)))


def test_expired_deadline_header_returns_the_terminal_doc():
    api = _api()
    try:
        past_ms = str(int((time.time() - 5.0) * 1000.0))
        status, doc = api.handle(
            "POST", "/scans", _submit_body(seed=0),
            headers={"X-Deadline-Ms": past_ms})
        # Terminal at admission is an answer, not an error: 200 with
        # the typed doc, exactly like a cache hit.
        assert status == 200
        assert doc["state"] == "deadline_exceeded"
        assert doc.get("result") is None
    finally:
        api.service.stop(wait_s=1)


def test_deadline_header_is_case_insensitive_and_rides_the_job():
    api = _api()
    try:
        future_ms = str(int((time.time() + 300.0) * 1000.0))
        status, doc = api.handle(
            "POST", "/scans", _submit_body(seed=0),
            headers={"x-deadline-ms": future_ms})
        assert status == 202
        assert doc["deadline_epoch_s"] == pytest.approx(
            float(future_ms) / 1000.0)
    finally:
        api.service.stop(wait_s=1)


def test_unparseable_deadline_header_is_a_400():
    api = _api()
    try:
        status, doc = api.handle(
            "POST", "/scans", _submit_body(seed=0),
            headers={"X-Deadline-Ms": "tomorrow-ish"})
        assert status == 400
        assert "epoch milliseconds" in doc["detail"]
        # Nothing was admitted on the malformed request.
        assert api.service.stats()["queue_depth"] == 0
    finally:
        api.service.stop(wait_s=1)


# -- the books: per-kind shed counters in perf ------------------------------

def test_throughput_stats_counts_sheds_per_kind():
    stats = ThroughputStats(jobs=1)
    for kind in ("queue", "queue", "deadline", "brownout"):
        stats.record_shed(kind)
    assert stats.shed_by_kind["queue"] == 2
    assert stats.shed_total() == 4
    stats.pressure = "elevated"
    doc = stats.as_dict()
    assert doc["overload"]["shed_by_kind"]["deadline"] == 1
    assert doc["overload"]["pressure"] == "elevated"
    rendered = stats.format()
    assert "shed" in rendered and "elevated" in rendered

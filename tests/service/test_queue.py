"""JobQueue: bounds, typed shed, priority, per-client fairness,
anti-starvation promotion and per-job TTL expiry."""

import pytest

from repro.service import Job, JobQueue, QueueFull


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _job(client: str = "a", priority: int = 0, n: int = 0,
         ttl_s: float | None = None) -> Job:
    return Job(job_id=f"{client}{priority}{n}", client=client,
               scan_key=f"k{client}{priority}{n}", module_hash="h",
               config={}, priority=priority, ttl_s=ttl_s)


def test_fifo_within_one_client():
    queue = JobQueue(max_depth=8)
    first, second = _job(n=1), _job(n=2)
    queue.put(first)
    queue.put(second)
    assert queue.get(timeout=0) is first
    assert queue.get(timeout=0) is second
    assert queue.get(timeout=0) is None


def test_bounded_depth_sheds_with_typed_rejection():
    queue = JobQueue(max_depth=2)
    queue.put(_job(n=1))
    queue.put(_job(n=2))
    with pytest.raises(QueueFull) as excinfo:
        queue.put(_job(n=3))
    assert excinfo.value.kind == "queue"
    assert excinfo.value.depth == 2
    assert excinfo.value.limit == 2
    assert queue.shed == 1
    # Containment re-queues bypass the bound — retries are never shed.
    queue.put(_job(n=4), force=True)
    assert len(queue) == 3


def test_higher_priority_runs_first():
    queue = JobQueue(max_depth=8)
    low, high = _job(priority=0), _job(priority=5)
    queue.put(low)
    queue.put(high)
    assert queue.get(timeout=0) is high
    assert queue.get(timeout=0) is low


def test_round_robin_across_clients():
    queue = JobQueue(max_depth=16)
    # Client "a" floods; client "b" arrives later with one job.
    flood = [_job("a", n=n) for n in range(4)]
    for job in flood:
        queue.put(job)
    lone = _job("b")
    queue.put(lone)
    order = [queue.get(timeout=0) for _ in range(5)]
    # "b" is served second, not after the whole flood.
    assert order[0] is flood[0]
    assert order[1] is lone
    assert order[2:] == flood[1:]


def test_aged_job_is_promoted_over_higher_priority():
    clock = FakeClock()
    queue = JobQueue(max_depth=16, promote_after_s=5.0, clock=clock)
    parked = _job("slow", priority=0)
    queue.put(parked)
    clock.advance(5.0)                  # parked crosses the age bar
    fresh = [_job("hot", priority=9, n=n) for n in range(3)]
    for job in fresh:
        queue.put(job)
    # Without promotion the priority-9 flood would run first; the aged
    # job jumps every band instead.
    assert queue.get(timeout=0) is parked
    assert queue.promoted == 1
    assert queue.get(timeout=0) is fresh[0]


def test_promotion_serves_oldest_starved_job_first():
    clock = FakeClock()
    queue = JobQueue(max_depth=16, promote_after_s=1.0, clock=clock)
    older = _job("x", n=1)
    queue.put(older)
    clock.advance(0.5)
    newer = _job("y", n=2)
    queue.put(newer)
    clock.advance(1.0)                  # both now starved
    assert queue.get(timeout=0) is older
    assert queue.get(timeout=0) is newer
    assert queue.promoted == 2


def test_ttl_expires_stale_jobs_via_callback():
    clock = FakeClock()
    expired = []
    queue = JobQueue(max_depth=16, on_expired=expired.append,
                     clock=clock)
    stale = _job("a", n=1, ttl_s=2.0)
    durable = _job("a", n=2)            # no TTL: waits forever
    queue.put(stale)
    queue.put(durable)
    clock.advance(2.0)
    # The sweep runs on get: the stale job is finalized through the
    # callback and never handed to a worker.
    assert queue.get(timeout=0) is durable
    assert expired == [stale]
    assert queue.expired == 1
    assert len(queue) == 0


def test_requeue_keeps_original_age_for_ttl_and_promotion():
    clock = FakeClock()
    expired = []
    queue = JobQueue(max_depth=16, on_expired=expired.append,
                     clock=clock)
    job = _job("a", ttl_s=3.0)
    queue.put(job)
    clock.advance(2.0)
    assert queue.get(timeout=0) is job  # claimed by a worker...
    queue.put(job, force=True)          # ...then requeued by the reaper
    clock.advance(1.0)                  # total queue age: 3s
    assert queue.get(timeout=0) is None
    assert expired == [job]             # TTL measured from first enqueue


def test_drain_returns_everything_in_priority_order():
    queue = JobQueue(max_depth=8)
    jobs = [_job("a", priority=0), _job("b", priority=3),
            _job("a", priority=3, n=1)]
    for job in jobs:
        queue.put(job)
    drained = queue.drain()
    assert len(drained) == 3
    assert len(queue) == 0
    assert [j.priority for j in drained] == [3, 3, 0]
    assert queue.get(timeout=0) is None

"""JobQueue: bounds, typed shed, priority, per-client fairness."""

import pytest

from repro.service import Job, JobQueue, QueueFull


def _job(client: str = "a", priority: int = 0, n: int = 0) -> Job:
    return Job(job_id=f"{client}{priority}{n}", client=client,
               scan_key=f"k{client}{priority}{n}", module_hash="h",
               config={}, priority=priority)


def test_fifo_within_one_client():
    queue = JobQueue(max_depth=8)
    first, second = _job(n=1), _job(n=2)
    queue.put(first)
    queue.put(second)
    assert queue.get(timeout=0) is first
    assert queue.get(timeout=0) is second
    assert queue.get(timeout=0) is None


def test_bounded_depth_sheds_with_typed_rejection():
    queue = JobQueue(max_depth=2)
    queue.put(_job(n=1))
    queue.put(_job(n=2))
    with pytest.raises(QueueFull) as excinfo:
        queue.put(_job(n=3))
    assert excinfo.value.kind == "depth"
    assert excinfo.value.depth == 2
    assert excinfo.value.limit == 2
    assert queue.shed == 1
    # Containment re-queues bypass the bound — retries are never shed.
    queue.put(_job(n=4), force=True)
    assert len(queue) == 3


def test_higher_priority_runs_first():
    queue = JobQueue(max_depth=8)
    low, high = _job(priority=0), _job(priority=5)
    queue.put(low)
    queue.put(high)
    assert queue.get(timeout=0) is high
    assert queue.get(timeout=0) is low


def test_round_robin_across_clients():
    queue = JobQueue(max_depth=16)
    # Client "a" floods; client "b" arrives later with one job.
    flood = [_job("a", n=n) for n in range(4)]
    for job in flood:
        queue.put(job)
    lone = _job("b")
    queue.put(lone)
    order = [queue.get(timeout=0) for _ in range(5)]
    # "b" is served second, not after the whole flood.
    assert order[0] is flood[0]
    assert order[1] is lone
    assert order[2:] == flood[1:]


def test_drain_returns_everything_in_priority_order():
    queue = JobQueue(max_depth=8)
    jobs = [_job("a", priority=0), _job("b", priority=3),
            _job("a", priority=3, n=1)]
    for job in jobs:
        queue.put(job)
    drained = queue.drain()
    assert len(drained) == 3
    assert len(queue) == 0
    assert [j.priority for j in drained] == [3, 3, 0]
    assert queue.get(timeout=0) is None

"""Re-verdict pipeline: capture, replay, drift audit, quarantine.

These drive a real in-memory ScanService with trace capture on: real
campaigns store trace-IR packs, then re-verdict sweeps and drift
audits run over them with zero re-fuzzing.
"""

import time

import pytest

from repro.scanner import ORACLE_VERSION
from repro.service import ScanService, ScanServiceConfig
from repro.service.reverdict import audit_traces, reverdict_store
from repro.traceir import TRACEIR_VERSION

from .conftest import FAST_TIMEOUT_MS, contract_bytes


def _service(**config_kwargs) -> ScanService:
    service = ScanService(
        store=":memory:",
        config=ScanServiceConfig(workers=1, poll_s=0.02,
                                 default_timeout_ms=FAST_TIMEOUT_MS,
                                 capture_traces=True, **config_kwargs))
    service.start()
    return service


def _wait_terminal(service: ScanService, job_id: str,
                   timeout_s: float = 60.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        job = service.job(job_id)
        if job is not None and job.terminal:
            return job
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} never became terminal")


def _scan_one(service: ScanService, seed: int) -> str:
    data, abi = contract_bytes(seed=seed)
    submission = service.submit_bytes(data, abi)
    job = _wait_terminal(service, submission.job.job_id)
    assert job.state == "done"
    return job.scan_key


def _sans_provenance(doc: dict) -> dict:
    doc = dict(doc)
    doc.pop("provenance", None)
    return doc


def test_reverdict_reproduces_verdict_modulo_provenance():
    service = _service()
    try:
        key = _scan_one(service, seed=0)
        before = service.store.verdict_record(key)
        assert service.store.get_trace(key) is not None

        report = service.reverdict(oracle_version=ORACLE_VERSION + 1)
        assert report.replayed == 1
        assert report.rewritten == 1
        assert report.matched == 1
        assert report.drift == 0
        assert report.corrupt == 0

        after = service.store.verdict_record(key)
        assert after["result"]["provenance"] == {
            "oracle_version": ORACLE_VERSION + 1,
            "traceir_version": TRACEIR_VERSION,
            "oracles": ["fake_eos", "fake_notif", "missauth",
                        "blockinfodep", "rollback"],
            "source": "replay",
        }
        assert (_sans_provenance(after["result"])
                == _sans_provenance(before["result"]))
    finally:
        service.drain()


def test_insufficient_surface_requeued_not_drift():
    """A v2 pack stored *without* the semantic surface predates what
    the semantic families need: the sweep must count it insufficient
    and re-queue a fresh scan — never report drift, never rewrite."""
    service = _service()
    try:
        key = _scan_one(service, seed=0)
        row = service.store.get_trace(key)
        # Strip the semantic surface, as a pack captured before the
        # surface existed would be.
        from repro.traceir import decode_pack, encode_pack
        import dataclasses
        pack = decode_pack(row["blob"])
        bare = dataclasses.replace(pack, semantic=None)
        service.store.put_trace(key, row["module_hash"], row["tool"],
                                encode_pack(bare),
                                row["traceir_version"])

        report = service.reverdict(oracles="all")
        assert report.insufficient == 1
        assert report.replayed == 0
        assert report.drift == 0
        assert report.rewritten == 0
        incident = report.incidents[0]
        assert incident["kind"] == "insufficient_surface"
        assert incident["scan_key"] == key

        # The pack is gone and the verdict dropped, so resubmission
        # misses the dedup cache and fuzzes fresh.
        assert service.store.get_trace(key) is None
        assert service.store.verdict_record(key) is None
        assert service.stats()["traceir"]["insufficient_surface"] == 1
        data, abi = contract_bytes(seed=0)
        resubmission = service.submit_bytes(data, abi)
        assert resubmission.outcome == "queued"
        job = _wait_terminal(service, resubmission.job.job_id)
        assert job.state == "done"
    finally:
        service.drain()


def test_reverdict_with_semantic_families_rewrites_provenance():
    service = _service()
    try:
        key = _scan_one(service, seed=0)
        report = service.reverdict(oracles="all")
        assert report.replayed == 1
        assert report.insufficient == 0
        after = service.store.verdict_record(key)
        provenance = after["result"]["provenance"]
        assert provenance["source"] == "replay"
        assert "token_arith" in provenance["oracles"]
        assert "data_consistency" in provenance["oracles"]
    finally:
        service.drain()


def test_reverdict_job_through_scheduler():
    service = _service()
    try:
        _scan_one(service, seed=0)
        submission = service.submit_reverdict()
        job = _wait_terminal(service, submission.job.job_id)
        assert job.state == "done"
        assert job.result_doc["replayed"] == 1
        assert job.result_doc["drift"] == 0
        assert job.result_doc["oracle_version"] == ORACLE_VERSION
        stats = service.stats()["traceir"]
        assert stats["traces_stored"] == 1
        assert stats["reverdicts"] == 1
        assert stats["trace_corruptions"] == 0
        assert stats["verdict_drift"] == 0
    finally:
        service.drain()


def test_corrupt_trace_quarantined_and_module_rescannable():
    service = _service()
    try:
        key = _scan_one(service, seed=0)
        row = service.store.get_trace(key)
        blob = bytearray(row["blob"])
        blob[len(blob) // 2] ^= 0xFF
        # Re-store so the *store* checksum is valid but the codec's
        # section CRC is not: corruption the traces table can't see.
        service.store.put_trace(key, row["module_hash"], row["tool"],
                                bytes(blob), row["traceir_version"])

        report = service.reverdict()
        assert report.corrupt == 1
        assert report.replayed == 0
        incident = report.incidents[0]
        assert incident["kind"] == "trace_corruption"
        assert incident["scan_key"] == key

        assert service.store.get_trace(key) is None
        assert service.store.verdict_record(key) is None
        assert service.store.get_quarantine(key)
        assert service.stats()["traceir"]["trace_corruptions"] == 1

        # With the verdict dropped, the same bytes miss the dedup
        # cache and queue a fresh campaign.
        data, abi = contract_bytes(seed=0)
        resubmission = service.submit_bytes(data, abi)
        assert resubmission.outcome == "queued"
        job = _wait_terminal(service, resubmission.job.job_id)
        assert job.state == "done"
    finally:
        service.drain()


def test_audit_detects_tampered_verdict_without_rewriting():
    service = _service()
    try:
        key = _scan_one(service, seed=0)
        record = service.store.verdict_record(key)
        tampered = dict(record["result"])
        tampered["scans"] = dict(tampered["scans"])
        (tool,) = tampered["scans"].keys()
        tampered["scans"][tool] = dict(tampered["scans"][tool])
        tampered["scans"][tool]["findings"] = {}
        service.store.put_verdict(key, record["module_hash"],
                                  record["config"], tampered)

        report = service.audit_drift(sample=4)
        assert report.drift == 1
        assert report.rewritten == 0
        incident = report.incidents[0]
        assert incident["kind"] == "verdict_drift"
        assert incident["scan_key"] == key
        assert incident["before"]["findings"] == {}
        assert incident["after"]["findings"]

        # Audit observes; it never repairs.  The tampered verdict is
        # still what the store serves.
        assert (service.store.verdict_record(key)["result"]["scans"]
                [tool]["findings"] == {})
        stats = service.stats()["traceir"]
        assert stats["verdict_drift"] == 1
        assert stats["drift_audits"] == 1
        assert any(i["kind"] == "verdict_drift"
                   for i in stats["drift_incidents"])
    finally:
        service.drain()


def test_audit_cursor_rotates_through_keys():
    service = _service()
    try:
        _scan_one(service, seed=0)
        _scan_one(service, seed=1)
        store = service.store
        report1, cursor = audit_traces(store, sample=1, cursor=0)
        assert report1.replayed == 1
        report2, cursor = audit_traces(store, sample=1, cursor=cursor)
        assert report2.replayed == 1
        assert cursor == 0  # wrapped: both keys visited exactly once
        assert report1.matched + report2.matched == 2
    finally:
        service.drain()


def test_orphaned_trace_counted_not_rewritten():
    service = _service()
    try:
        key = _scan_one(service, seed=0)
        service.store.delete_verdict(key)
        report = reverdict_store(service.store)
        assert report.replayed == 1
        assert report.orphaned == 1
        assert report.rewritten == 0
        assert service.store.verdict_record(key) is None
    finally:
        service.drain()


def test_background_auditor_counts_rounds():
    service = _service(drift_audit_s=0.05, drift_audit_sample=2)
    try:
        _scan_one(service, seed=0)
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if service.stats()["traceir"]["drift_audits"] >= 2:
                break
            time.sleep(0.05)
        stats = service.stats()["traceir"]
        assert stats["drift_audits"] >= 2
        assert stats["verdict_drift"] == 0
    finally:
        service.drain()


def test_capture_off_stores_no_traces():
    service = ScanService(
        store=":memory:",
        config=ScanServiceConfig(workers=1, poll_s=0.02,
                                 default_timeout_ms=FAST_TIMEOUT_MS))
    service.start()
    try:
        key = _scan_one(service, seed=0)
        assert service.store.get_trace(key) is None
        report = service.reverdict()
        assert report.replayed == 0
        assert service.stats()["traceir"]["traces_stored"] == 0
    finally:
        service.drain()

"""ScanService: dedup, single-flight, backpressure, drain/resume.

These run the real pipeline (tiny virtual budgets) against in-memory
or tmp-path stores; fault injection reuses the resilience fixtures to
kill jobs mid-flight deterministically.
"""

import threading
import time

import pytest

from repro.resilience import (CampaignJournal, Fault, MalformedModule,
                              ResiliencePolicy, install_fault_plan)
from repro.resilience.journal import campaign_result_from_doc
from repro.service import (QueueFull, ScanService, ScanServiceConfig,
                           Submission)

from .conftest import FAST_TIMEOUT_MS, contract_bytes


def _service(tmp_path=None, workers: int = 1, max_depth: int = 8,
             policy: ResiliencePolicy | None = None,
             journal=None, start: bool = True,
             max_inflight: int | None = None,
             **config_kwargs) -> ScanService:
    store = str(tmp_path / "store.db") if tmp_path else ":memory:"
    service = ScanService(
        store=store,
        config=ScanServiceConfig(workers=workers, max_depth=max_depth,
                                 max_inflight=max_inflight,
                                 poll_s=0.02,
                                 default_timeout_ms=FAST_TIMEOUT_MS,
                                 **config_kwargs),
        policy=policy, journal=journal)
    if start:
        service.start()
    return service


def _wait_terminal(service: ScanService, job_id: str,
                   timeout_s: float = 60.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        job = service.job(job_id)
        if job is not None and job.terminal:
            return job
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} never became terminal")


def test_dedup_hit_returns_byte_identical_scan_result(sample_contract):
    data, abi = sample_contract
    service = _service()
    try:
        first = service.submit_bytes(data, abi)
        assert first.outcome == "queued"
        job = _wait_terminal(service, first.job.job_id)
        assert job.state == "done"

        second = service.submit_bytes(data, abi)
        assert second.outcome == "cached"
        assert second.job.state == "done"
        # The cached verdict is byte-identical: same JSON doc, and the
        # rehydrated ScanResult compares equal field by field.
        assert second.job.result_doc == job.result_doc
        fresh = campaign_result_from_doc(job.result_doc)
        cached = campaign_result_from_doc(second.job.result_doc)
        assert cached.scans["wasai"] == fresh.scans["wasai"]
        assert service.stats()["dedup"]["cache_hits"] == 1
    finally:
        service.stop(wait_s=5)


def test_cache_survives_process_restart(tmp_path, sample_contract):
    data, abi = sample_contract
    service = _service(tmp_path)
    try:
        submission = service.submit_bytes(data, abi)
        _wait_terminal(service, submission.job.job_id)
    finally:
        service.stop(wait_s=5)
    # A "new process": fresh service over the same store file.
    reborn = _service(tmp_path, start=False)
    try:
        hit = reborn.submit_bytes(data, abi)
        assert hit.outcome == "cached"
        assert hit.job.state == "done"
    finally:
        reborn.stop(wait_s=1)


def test_single_flight_coalesces_concurrent_submits(sample_contract):
    data, abi = sample_contract
    # Hold the one campaign open for long enough that every concurrent
    # submission demonstrably lands while it is in flight.
    install_fault_plan(Fault(stage="fuzz", kind="hang", hang_s=0.5,
                             match="burst"))
    service = _service(workers=2)
    submissions: list[Submission] = []
    errors: list[Exception] = []
    gate = threading.Barrier(6)

    def submit():
        try:
            gate.wait(timeout=10)
            submissions.append(service.submit_bytes(data, abi,
                                                    client="burst"))
        except Exception as exc:  # noqa: BLE001 - collected for assert
            errors.append(exc)

    try:
        threads = [threading.Thread(target=submit) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        job_ids = {s.job.job_id for s in submissions}
        assert len(job_ids) == 1  # one job serves all six submissions
        job = _wait_terminal(service, job_ids.pop())
        assert job.state == "done"
        stats = service.stats()
        # Exactly one campaign ran; every other submission coalesced
        # onto it (or, if it finished first, hit the store).
        assert stats["completed"] == 1
        assert stats["dedup"]["coalesce_hits"] == 5
        assert stats["queue_depth"] == 0
    finally:
        service.stop(wait_s=5)


def test_bounded_queue_sheds_typed(sample_contract):
    # Workers never started: jobs stay queued, so the depth bound and
    # the in-flight budget are both reachable deterministically.
    service = _service(workers=1, max_depth=2, max_inflight=2,
                       start=False)
    try:
        for seed in (1, 2):
            data, abi = contract_bytes(seed=seed)
            service.submit_bytes(data, abi)
        data, abi = contract_bytes(seed=3)
        with pytest.raises(QueueFull) as excinfo:
            service.submit_bytes(data, abi)
        assert excinfo.value.kind in ("queue", "inflight")
        assert service.stats()["shed"] == 1
        # A duplicate of an already-queued module still coalesces —
        # dedup is checked before admission control sheds.
        dup_data, dup_abi = contract_bytes(seed=1)
        duplicate = service.submit_bytes(dup_data, dup_abi)
        assert duplicate.outcome == "coalesced"
    finally:
        service.stop(wait_s=1)


def test_hostile_module_rejected_at_admission(sample_contract):
    _, abi = sample_contract
    service = _service(start=False)
    try:
        with pytest.raises(MalformedModule):
            service.submit_bytes(b"\x00asm\x04\x00\x00\x00junk", abi)
        stats = service.stats()
        assert stats["admission_rejected"] == 1
        assert stats["queue_depth"] == 0  # never occupied a worker
    finally:
        service.stop(wait_s=1)


def test_failed_job_retries_then_quarantines(sample_contract):
    data, abi = sample_contract
    # Every fuzz stage for this client dies: the job fails, is retried
    # once (max_retries=1), then crosses the quarantine threshold.
    install_fault_plan(Fault(stage="fuzz", kind="error",
                             match="doomed"))
    policy = ResiliencePolicy(max_retries=1, quarantine_after=2)
    service = _service(policy=policy)
    try:
        submission = service.submit_bytes(data, abi, client="doomed")
        job = _wait_terminal(service, submission.job.job_id)
        assert job.state == "quarantined"
        assert job.attempts == 2
        stats = service.stats()
        assert stats["quarantined"] == 1
        assert service.store.get_quarantine(job.scan_key)
    finally:
        service.stop(wait_s=5)


def test_drain_checkpoints_and_resume_replays_exactly_once(
        tmp_path, sample_contract):
    journal = CampaignJournal(tmp_path / "service.jsonl")
    # A worker "crash" mid-job (simulated ^C from the fault plan) plus
    # two jobs that never got a worker: drain must checkpoint the
    # queued ones, and resume must replay each exactly once.
    service = _service(tmp_path, journal=journal, start=False)
    submitted = {}
    try:
        for seed in (1, 2):
            data, abi = contract_bytes(seed=seed)
            submission = service.submit_bytes(data, abi, client="c")
            submitted[seed] = submission.job.scan_key
        checkpointed = service.drain(wait_s=1)
        assert checkpointed == 2
    finally:
        service.store.close()

    # Daemon restart: same store, same journal.
    resumed = _service(tmp_path, journal=journal, start=False)
    try:
        assert resumed.resume_from_journal() == 2
        assert resumed.stats()["queue_depth"] == 2
        # Replayed jobs carry the same scan keys as the originals.
        with resumed._lock:
            keys = {job.scan_key for job in resumed._jobs.values()}
        assert keys == set(submitted.values())
        # Exactly once: a second resume finds only claim tombstones.
        assert resumed.resume_from_journal() == 0
        resumed.start()
        with resumed._lock:
            job_ids = list(resumed._jobs)
        for job_id in job_ids:
            assert _wait_terminal(resumed, job_id).state == "done"
    finally:
        resumed.stop(wait_s=5)
    # Third service over the same journal: still nothing to replay.
    third = _service(tmp_path, journal=journal, start=False)
    try:
        assert third.resume_from_journal() == 0
    finally:
        third.store.close()


def test_killed_worker_job_requeued_exactly_once(sample_contract):
    data, abi = sample_contract
    # The first worker to claim a job dies on the spot (a BaseException
    # that sails past every except-Exception layer); the watchdog must
    # reap it, requeue the claimed job exactly once and restart a
    # worker — the job still completes.
    install_fault_plan(Fault(stage="worker", kind="kill", times=1))
    service = _service(workers=1, watchdog_poll_s=0.05,
                       restart_backoff_s=0.0)
    try:
        submission = service.submit_bytes(data, abi)
        job = _wait_terminal(service, submission.job.job_id)
        assert job.state == "done"
        assert job.requeues == 1
        stats = service.stats()
        assert stats["supervisor"]["reaps"]["died"] >= 1
        assert stats["resilience"]["worker_restarts"] >= 1
        assert service.health()["status"] == "ok"
    finally:
        service.stop(wait_s=5)


def test_hung_worker_claim_revoked_and_job_requeued(sample_contract):
    data, abi = sample_contract
    # The first worker wedges past the task deadline; the watchdog
    # abandons it (claim revoked — the zombie's eventual result is
    # discarded) and a replacement finishes the job.
    install_fault_plan(Fault(stage="worker", kind="hang", hang_s=1.0,
                             times=1))
    service = _service(workers=1, task_deadline_s=0.2,
                       watchdog_poll_s=0.05, restart_backoff_s=0.0)
    try:
        submission = service.submit_bytes(data, abi)
        job = _wait_terminal(service, submission.job.job_id)
        assert job.state == "done"
        assert job.requeues == 1
        assert service.stats()["supervisor"]["reaps"]["hung"] >= 1
        fingerprint = job.result_doc
        time.sleep(1.2)             # let the zombie wake and finish
        assert job.state == "done"
        assert job.result_doc == fingerprint   # zombie write discarded
    finally:
        service.stop(wait_s=5)


def test_open_breaker_forces_blackbox_and_never_caches(sample_contract):
    data, abi = sample_contract
    # A deterministically dead solver: the first campaign degrades
    # internally, trips the stage breaker (threshold 1), and the *next*
    # job is forced black-box before it even starts.  Forced verdicts
    # must not be cached — the store would otherwise serve the weaker
    # answer forever.
    install_fault_plan(Fault(stage="solve", kind="error"))
    service = _service(workers=1, breaker_threshold=1,
                       breaker_cooldown_s=60.0)
    try:
        first = service.submit_bytes(data, abi, client="one")
        job1 = _wait_terminal(service, first.job.job_id)
        assert job1.state == "done"
        assert "wasai" in job1.result_doc.get("degraded", [])
        assert service.health()["status"] == "degraded"
        assert "solve" in service.health()["breakers"]["open"]
        assert service.stats()["resilience"]["breaker_trips"] >= 1

        other_data, other_abi = contract_bytes(seed=7)
        second = service.submit_bytes(other_data, other_abi)
        job2 = _wait_terminal(service, second.job.job_id)
        assert job2.state == "done"
        assert "wasai" in job2.result_doc.get("degraded", [])
        # Not cached: a resubmission after recovery gets the full run.
        assert service.store.get_verdict(job2.scan_key) is None
        assert service.stats()["resilience"]["forced_blackbox"] >= 1
    finally:
        service.stop(wait_s=5)


def test_queued_job_expires_after_ttl(sample_contract):
    data, abi = sample_contract
    service = _service(workers=1, start=False)
    try:
        submission = service.submit_bytes(data, abi, ttl_s=0.05)
        time.sleep(0.1)             # TTL elapses with no worker around
        service.start()             # first queue poll sweeps it
        job = _wait_terminal(service, submission.job.job_id)
        assert job.state == "expired"
        assert "TTL" in (job.error or "")
        stats = service.stats()
        assert stats["expired"] == 1
        assert stats["jobs"].get("expired") == 1
    finally:
        service.stop(wait_s=5)


def test_drain_under_load_resumes_every_job_exactly_once(tmp_path):
    """The SIGTERM story under load: drain mid-burst, restart, resume.

    Six distinct contracts, two workers; drain fires while jobs are
    still queued/running.  Every job must end done exactly once —
    finished in generation 1 or checkpointed and replayed in
    generation 2 — with six distinct verdicts in the store and no
    duplicate campaign for any scan key.
    """
    journal = CampaignJournal(tmp_path / "drain.jsonl")
    seeds = (1, 2, 3, 4, 5, 6)
    contracts = {seed: contract_bytes(seed=seed) for seed in seeds}
    service = _service(tmp_path, workers=2, journal=journal)
    keys = {}
    try:
        for seed, (data, abi) in contracts.items():
            keys[seed] = service.submit_bytes(data, abi,
                                              client=f"c{seed}").job
        # Drain immediately: the burst is still mostly queued.
        checkpointed = service.drain(wait_s=30)
        done_gen1 = sum(1 for job in keys.values()
                        if job.state == "done")
        # Drain is lossless: every admitted job either finished or was
        # checkpointed (claimed jobs are allowed to finish).
        assert done_gen1 + checkpointed == len(seeds)
        assert checkpointed >= 1    # the drain really hit a loaded queue
    finally:
        service.store.close()

    resumed = _service(tmp_path, workers=2, journal=journal,
                       start=False)
    try:
        assert resumed.resume_from_journal() == checkpointed
        # Exactly once: an immediate second resume replays nothing.
        assert resumed.resume_from_journal() == 0
        resumed.start()
        with resumed._lock:
            job_ids = list(resumed._jobs)
        for job_id in job_ids:
            assert _wait_terminal(resumed, job_id).state == "done"
        # Replays dedup against the store, so no scan key ran twice:
        # generation totals add up and the store holds one verdict per
        # distinct contract.
        assert resumed.store.counts()["verdicts"] == len(seeds)
        gen1_keys = {job.scan_key for job in keys.values()}
        with resumed._lock:
            gen2_keys = {job.scan_key
                         for job in resumed._jobs.values()}
        assert gen2_keys <= gen1_keys
        assert resumed.stats()["completed"] == checkpointed
    finally:
        resumed.stop(wait_s=5)


def test_crashed_job_is_contained_and_store_unpolluted(
        tmp_path, sample_contract):
    data, abi = sample_contract
    # KeyboardInterrupt (the resilience suite's simulated mid-job
    # kill) escapes the campaign taxonomy; the worker thread must
    # survive and the job must land in failed, not poison the store.
    install_fault_plan(Fault(stage="fuzz", kind="abort",
                             match="victim"))
    policy = ResiliencePolicy(max_retries=0, quarantine_after=5)
    service = _service(tmp_path, policy=policy)
    try:
        submission = service.submit_bytes(data, abi, client="victim")
        job = _wait_terminal(service, submission.job.job_id)
        assert job.state == "failed"
        assert "KeyboardInterrupt" in (job.error or "")
        assert service.store.get_verdict(job.scan_key) is None
        # The service is still alive: an untainted client succeeds.
        ok = service.submit_bytes(data, abi, client="clean")
        assert _wait_terminal(service, ok.job.job_id).state == "done"
    finally:
        service.stop(wait_s=5)

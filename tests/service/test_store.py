"""ArtifactStore: content addressing, round-trips, persistence."""

import threading

from repro.scanner.detectors import ScanResult, VulnerabilityFinding
from repro.parallel.campaigns import CampaignResult
from repro.resilience import (campaign_result_from_doc,
                              campaign_result_to_doc)
from repro.service import ArtifactStore


def _result(detected: bool = True) -> CampaignResult:
    scan = ScanResult(target_account=7)
    scan.findings["fake_eos"] = VulnerabilityFinding(
        "fake_eos", detected, "evidence line")
    return CampaignResult(
        scans={"wasai": scan},
        stage_seconds={"setup": 0.1, "fuzz": 0.5, "scan": 0.01},
        coverage={"wasai": {"iterations": 42, "covered": 9,
                            "timeline": [[0.0, 1], [1.5, 9]]}})


def test_module_round_trip_and_idempotence():
    store = ArtifactStore(":memory:")
    store.put_module("h1", b"\x00asm contents")
    store.put_module("h1", b"different")  # first write wins
    assert store.get_module("h1") == b"\x00asm contents"
    assert store.get_module("missing") is None
    assert store.counts()["modules"] == 1


def test_verdict_round_trip_is_byte_identical():
    store = ArtifactStore(":memory:")
    doc = campaign_result_to_doc(_result())
    store.put_verdict("key", "h1", {"tool": "wasai"}, doc)
    fetched = store.get_verdict("key")
    assert fetched == doc
    rehydrated = campaign_result_from_doc(fetched)
    assert rehydrated.scans["wasai"] == _result().scans["wasai"]
    assert rehydrated.coverage == _result().coverage


def test_coverage_and_quarantine_tables():
    store = ArtifactStore(":memory:")
    timeline = {"wasai": {"timeline": [[0.0, 1], [2.0, 5]]}}
    store.put_coverage("key", timeline)
    assert store.get_coverage("key") == timeline
    store.put_quarantine("bad", "h2", ["crash", "crash again"])
    assert store.get_quarantine("bad") == ["crash", "crash again"]
    assert store.quarantined_keys() == ["bad"]


def test_persistence_across_reopen(tmp_path):
    path = tmp_path / "artifacts.db"
    store = ArtifactStore(path)
    doc = campaign_result_to_doc(_result())
    store.put_module("h1", b"bytes")
    store.put_verdict("key", "h1", {"tool": "wasai"}, doc)
    store.close()
    reopened = ArtifactStore(path)
    assert reopened.get_module("h1") == b"bytes"
    assert reopened.get_verdict("key") == doc
    reopened.close()


def test_concurrent_writers_do_not_corrupt(tmp_path):
    store = ArtifactStore(tmp_path / "artifacts.db")
    errors = []

    def write(index: int) -> None:
        try:
            for i in range(20):
                store.put_module(f"h{index}-{i}", b"x" * 64)
        except Exception as exc:  # noqa: BLE001 - collected for assert
            errors.append(exc)

    threads = [threading.Thread(target=write, args=(n,))
               for n in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert store.counts()["modules"] == 80
    store.close()

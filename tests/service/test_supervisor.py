"""WorkerSupervisor: watchdog reap/replace, hang revocation, storms.

Detection is driven through the public ``check_once`` sweep with an
injectable clock and sleep, so nothing here depends on wall-time.
"""

import threading
import time

from repro.service import WorkerSupervisor


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _wait_for(predicate, timeout_s: float = 5.0) -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.005)
    raise AssertionError("condition never became true")


def _supervisor(worker_main, clock, workers=1, **kwargs):
    kwargs.setdefault("task_deadline_s", 10.0)
    kwargs.setdefault("restart_backoff_s", 0.0)
    kwargs.setdefault("max_restarts", 4)
    kwargs.setdefault("restart_window_s", 100.0)
    supervisor = WorkerSupervisor(worker_main, workers, clock=clock,
                                  sleep=lambda s: None, **kwargs)
    # No background watchdog: tests call check_once() themselves.
    for index in range(workers):
        supervisor._spawn(f"{supervisor.name_prefix}-{index}")
    return supervisor


def test_dead_worker_is_reaped_once_and_replaced():
    clock = FakeClock()
    reaps = []
    lives = []
    crash_first = threading.Event()

    def worker_main(record):
        lives.append(record.token)
        if not crash_first.is_set():
            crash_first.set()
            raise RuntimeError("worker death")
        # Replacement: park until the test ends.
        time.sleep(30)

    supervisor = _supervisor(worker_main, clock,
                             on_reap=lambda r, why: reaps.append(
                                 (r.token, why)))
    try:
        _wait_for(lambda: crash_first.is_set())
        _wait_for(lambda: not supervisor._records[0].thread.is_alive())
        supervisor.check_once()
        assert reaps == [(lives[0], "died")]
        _wait_for(lambda: len(lives) == 2)      # replacement spawned
        assert supervisor.alive() == 1
        # The dead record is never reaped twice.
        supervisor.check_once()
        assert len(reaps) == 1
        stats = supervisor.stats()
        assert stats["reaps"] == {"died": 1, "hung": 0}
        assert stats["restarts"] == 1
    finally:
        supervisor.stop()


def test_hung_worker_is_abandoned_after_deadline():
    clock = FakeClock()
    reaps = []
    release = threading.Event()

    def worker_main(record):
        if record.generation == 1:
            record.claim_job(object())          # wedged with a claim
            release.wait(timeout=30)
        else:
            time.sleep(30)

    supervisor = _supervisor(worker_main, clock,
                             on_reap=lambda r, why: reaps.append(why))
    try:
        _wait_for(lambda: supervisor._records[0].job is not None)
        supervisor.check_once()
        assert reaps == []                      # deadline not crossed
        clock.advance(10.1)
        supervisor.check_once()
        assert reaps == ["hung"]
        first = supervisor._records[0]
        assert first.abandoned                  # claim revoked
        # The zombie still runs but no longer counts as alive capacity.
        assert first.thread.is_alive()
        _wait_for(lambda: supervisor.alive() == 1)
        supervisor.check_once()                 # abandoned: swept once
        assert reaps == ["hung"]
    finally:
        release.set()
        supervisor.stop()


def test_restart_storm_trips_once_and_stops_replacing():
    clock = FakeClock()
    storms = []

    def worker_main(record):
        raise RuntimeError("crash loop")

    supervisor = _supervisor(worker_main, clock, max_restarts=3,
                             on_storm=lambda: storms.append(True))
    try:
        # Each sweep reaps the crashed worker and spawns a replacement
        # that crashes too; the 4th replacement request trips the storm.
        for _ in range(10):
            _wait_for(lambda: all(
                not r.thread.is_alive() or r.reaped
                for r in supervisor._records))
            supervisor.check_once()
            if supervisor.storm_tripped:
                break
        assert storms == [True]
        assert supervisor.restarts == 3
        replacements_after_storm = supervisor.restarts
        supervisor.check_once()
        assert supervisor.restarts == replacements_after_storm
        assert storms == [True]                 # on_storm fired once
        assert supervisor.stats()["storm"] is True
    finally:
        supervisor.stop()


def test_heartbeat_age_reflects_injected_clock():
    clock = FakeClock()
    started = threading.Event()

    def worker_main(record):
        record.beat()
        started.set()
        time.sleep(30)

    supervisor = _supervisor(worker_main, clock)
    try:
        _wait_for(lambda: started.is_set())
        clock.advance(7.5)
        assert supervisor.stats()["max_heartbeat_age_s"] >= 7.5
    finally:
        supervisor.stop()

"""Differential tests: the bit-blaster against the term evaluator.

For random expressions and inputs, asserting ``expr == concrete result``
must be SAT with a model matching the inputs, and asserting
``expr != concrete result`` under pinned inputs must be UNSAT.  This
cross-checks the CNF encodings of every operator against the direct
Python semantics in :func:`repro.smt.terms.evaluate`.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt import (AShr, And, BitVec, BitVecVal, Clz, Ctz, Eq, Ne,
                       Popcnt, Rotl, Rotr, SAT, SDiv, SRem, SignExt,
                       Solver, UDiv, UNSAT, URem, ZeroExt, evaluate)

BINOPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "shl": lambda a, b: a << b,
    "lshr": lambda a, b: a >> b,
    "ashr": AShr,
    "rotl": Rotl,
    "rotr": Rotr,
    "udiv": UDiv,
    "urem": URem,
    "sdiv": SDiv,
    "srem": SRem,
}


def assert_op_matches(op_name, a_val, b_val, width):
    x = BitVec(f"dx_{op_name}_{width}", width)
    y = BitVec(f"dy_{op_name}_{width}", width)
    expr = BINOPS[op_name](x, y)
    expected = evaluate(expr, {x.payload[0]: a_val, y.payload[0]: b_val})
    solver = Solver()
    solver.add(Eq(x, BitVecVal(a_val, width)))
    solver.add(Eq(y, BitVecVal(b_val, width)))
    solver.add(Eq(expr, BitVecVal(expected, width)))
    assert solver.check() == SAT, (op_name, a_val, b_val)
    # And the negation must be impossible.
    refute = Solver()
    refute.add(Eq(x, BitVecVal(a_val, width)))
    refute.add(Eq(y, BitVecVal(b_val, width)))
    refute.add(Ne(expr, BitVecVal(expected, width)))
    assert refute.check() == UNSAT, (op_name, a_val, b_val)


@pytest.mark.parametrize("op_name", sorted(BINOPS))
def test_binop_known_vectors(op_name):
    for a_val, b_val in ((0, 0), (1, 1), (0xFF, 3), (0x80, 0x7F),
                         (0xAB, 0), (5, 0xFF)):
        assert_op_matches(op_name, a_val, b_val, 8)


@settings(max_examples=25, deadline=None)
@given(a=st.integers(0, 255), b=st.integers(0, 255),
       op=st.sampled_from(sorted(BINOPS)))
def test_property_binops_8bit(a, b, op):
    assert_op_matches(op, a, b, 8)


@settings(max_examples=12, deadline=None)
@given(a=st.integers(0, 2**16 - 1), b=st.integers(0, 2**16 - 1),
       op=st.sampled_from(["add", "sub", "and", "or", "xor", "shl",
                           "lshr", "ashr", "rotl", "rotr"]))
def test_property_binops_16bit(a, b, op):
    assert_op_matches(op, a, b, 16)


@settings(max_examples=20, deadline=None)
@given(a=st.integers(0, 255),
       unop=st.sampled_from(["popcnt", "clz", "ctz", "not", "neg"]))
def test_property_unops(a, unop):
    x = BitVec(f"du_{unop}", 8)
    expr = {"popcnt": Popcnt, "clz": Clz, "ctz": Ctz,
            "not": lambda v: ~v, "neg": lambda v: -v}[unop](x)
    expected = evaluate(expr, {x.payload[0]: a})
    solver = Solver()
    solver.add(Eq(x, BitVecVal(a, 8)))
    solver.add(Ne(expr, BitVecVal(expected, 8)))
    assert solver.check() == UNSAT


@settings(max_examples=20, deadline=None)
@given(a=st.integers(0, 255), extra=st.integers(1, 8))
def test_property_extensions(a, extra):
    x = BitVec("dext", 8)
    for builder in (ZeroExt, SignExt):
        expr = builder(extra, x)
        expected = evaluate(expr, {"dext": a})
        solver = Solver()
        solver.add(Eq(x, BitVecVal(a, 8)))
        solver.add(Ne(expr, BitVecVal(expected, 8 + extra)))
        assert solver.check() == UNSAT


@settings(max_examples=15, deadline=None)
@given(a=st.integers(0, 2**16 - 1), b=st.integers(0, 2**16 - 1),
       c=st.integers(0, 2**16 - 1))
def test_property_composed_expressions(a, b, c):
    """Nested expressions: ((x ^ y) + (z | x)) * y pinned to inputs."""
    x = BitVec("cx", 16)
    y = BitVec("cy", 16)
    z = BitVec("cz", 16)
    expr = ((x ^ y) + (z | x)) * y
    expected = evaluate(expr, {"cx": a, "cy": b, "cz": c})
    solver = Solver()
    solver.add(Eq(x, BitVecVal(a, 16)))
    solver.add(Eq(y, BitVecVal(b, 16)))
    solver.add(Eq(z, BitVecVal(c, 16)))
    solver.add(Ne(expr, BitVecVal(expected, 16)))
    assert solver.check() == UNSAT

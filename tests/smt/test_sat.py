"""Unit tests for the CDCL SAT solver."""

import itertools
import random

import pytest

from repro.smt.sat import SAT, UNKNOWN, UNSAT, SatSolver


def make_solver(num_vars):
    solver = SatSolver()
    variables = [solver.new_var() for _ in range(num_vars)]
    return solver, variables


def test_empty_is_sat():
    solver = SatSolver()
    assert solver.solve().status == SAT


def test_single_unit_clause():
    solver, (a,) = make_solver(1)
    solver.add_clause([a])
    result = solver.solve()
    assert result.status == SAT
    assert result.model[a] is True


def test_contradicting_units_unsat():
    solver, (a,) = make_solver(1)
    solver.add_clause([a])
    solver.add_clause([-a])
    assert solver.solve().status == UNSAT


def test_empty_clause_unsat():
    solver, _ = make_solver(1)
    solver.add_clause([])
    assert solver.solve().status == UNSAT


def test_tautology_dropped():
    solver, (a,) = make_solver(1)
    solver.add_clause([a, -a])
    assert solver.solve().status == SAT


def test_simple_implication_chain():
    solver, v = make_solver(5)
    solver.add_clause([v[0]])
    for i in range(4):
        solver.add_clause([-v[i], v[i + 1]])
    result = solver.solve()
    assert result.status == SAT
    assert all(result.model[x] for x in v)


def test_pigeonhole_2_into_1_unsat():
    # Two pigeons, one hole.
    solver, (p1, p2) = make_solver(2)
    solver.add_clause([p1])
    solver.add_clause([p2])
    solver.add_clause([-p1, -p2])
    assert solver.solve().status == UNSAT


def test_pigeonhole_3_into_2_unsat():
    solver = SatSolver()
    # x[i][j]: pigeon i in hole j.
    x = [[solver.new_var() for _ in range(2)] for _ in range(3)]
    for i in range(3):
        solver.add_clause([x[i][0], x[i][1]])
    for j in range(2):
        for i1 in range(3):
            for i2 in range(i1 + 1, 3):
                solver.add_clause([-x[i1][j], -x[i2][j]])
    assert solver.solve().status == UNSAT


def test_xor_chain_sat():
    # Encode a xor b = 1 via CNF, check model validity.
    solver, (a, b) = make_solver(2)
    solver.add_clause([a, b])
    solver.add_clause([-a, -b])
    result = solver.solve()
    assert result.status == SAT
    assert result.model[a] != result.model[b]


def test_assumptions_sat_and_unsat():
    solver, (a, b) = make_solver(2)
    solver.add_clause([-a, b])
    assert solver.solve(assumptions=[a]).status == SAT
    assert solver.solve(assumptions=[a, -b]).status == UNSAT
    # Solver state must be reusable after assumption failure.
    assert solver.solve().status == SAT


def test_conflict_budget_reports_unknown():
    # A hard random 3-SAT-ish instance with a tiny budget.
    rng = random.Random(7)
    solver = SatSolver()
    variables = [solver.new_var() for _ in range(60)]
    for _ in range(260):
        clause = rng.sample(variables, 3)
        solver.add_clause([v if rng.random() < 0.5 else -v for v in clause])
    result = solver.solve(max_conflicts=1)
    assert result.status in (SAT, UNSAT, UNKNOWN)


def _check_brute_force(num_vars, clauses):
    """Reference truth for small formulas."""
    for bits in itertools.product([False, True], repeat=num_vars):
        ok = True
        for clause in clauses:
            if not any(bits[abs(l) - 1] == (l > 0) for l in clause):
                ok = False
                break
        if ok:
            return True
    return False


@pytest.mark.parametrize("seed", range(12))
def test_random_instances_agree_with_brute_force(seed):
    rng = random.Random(seed)
    num_vars = rng.randint(3, 8)
    num_clauses = rng.randint(2, 24)
    clauses = []
    for _ in range(num_clauses):
        size = rng.randint(1, 3)
        lits = rng.sample(range(1, num_vars + 1), min(size, num_vars))
        clauses.append([v if rng.random() < 0.5 else -v for v in lits])
    solver = SatSolver()
    for _ in range(num_vars):
        solver.new_var()
    for clause in clauses:
        solver.add_clause(clause)
    result = solver.solve()
    expected = _check_brute_force(num_vars, clauses)
    assert (result.status == SAT) == expected
    if result.status == SAT:
        for clause in clauses:
            assert any(result.model[abs(l)] == (l > 0) for l in clause)


def test_literal_out_of_range_rejected():
    solver, _ = make_solver(1)
    with pytest.raises(ValueError):
        solver.add_clause([5])
    with pytest.raises(ValueError):
        solver.add_clause([0])

"""Integration and property-based tests for the layered Solver."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt import (And, BitVec, BitVecVal, Concat, Eq, Extract, Ne, Not,
                       Or, Popcnt, SAT, SGT, SLT, Solver, UGE, ULT, UNSAT,
                       ZeroExt, evaluate)


def check_sat_model(solver, *constraints):
    for c in constraints:
        solver.add(c)
    assert solver.check() == SAT
    model = solver.model()
    for c in constraints:
        assert evaluate(c, model.as_dict()) is True
    return model


def test_equality_constraint():
    x = BitVec("x", 32)
    model = check_sat_model(Solver(), Eq(x, BitVecVal(12345, 32)))
    assert model[x] == 12345


def test_conflicting_equalities_unsat():
    x = BitVec("x", 32)
    solver = Solver()
    solver.add(Eq(x, BitVecVal(1, 32)))
    solver.add(Eq(x, BitVecVal(2, 32)))
    assert solver.check() == UNSAT


def test_range_constraints_fast_path():
    x = BitVec("x", 16)
    solver = Solver()
    model = check_sat_model(solver, UGE(x, BitVecVal(100, 16)),
                            ULT(x, BitVecVal(105, 16)),
                            Ne(x, BitVecVal(100, 16)))
    assert 101 <= model[x] < 105
    assert solver.stats.fast_path_hits == 1
    assert solver.stats.sat_calls == 0


def test_empty_range_unsat_fast_path():
    x = BitVec("x", 16)
    solver = Solver()
    solver.add(ULT(x, BitVecVal(5, 16)))
    solver.add(UGE(x, BitVecVal(5, 16)))
    assert solver.check() == UNSAT
    assert solver.stats.sat_calls == 0


def test_arithmetic_needs_sat_layer():
    x = BitVec("x", 16)
    y = BitVec("y", 16)
    solver = Solver()
    model = check_sat_model(solver, Eq(x + y, BitVecVal(10, 16)),
                            Eq(x, BitVecVal(3, 16)))
    assert model[y] == 7
    assert solver.stats.sat_calls == 1


def test_multiplication():
    x = BitVec("x", 12)
    model = check_sat_model(Solver(), Eq(x * BitVecVal(3, 12), BitVecVal(21, 12)),
                            ULT(x, BitVecVal(100, 12)))
    assert model[x] == 7


def test_signed_comparison():
    x = BitVec("x", 8)
    model = check_sat_model(Solver(), SLT(x, BitVecVal(0, 8)),
                            SGT(x, BitVecVal(-3, 8)))
    # x in {-2, -1} i.e. {0xFE, 0xFF}
    assert model[x] in (0xFE, 0xFF)


def test_popcnt_constraint():
    # The paper's popcount obfuscation: find x with popcnt(x) == 3.
    x = BitVec("x", 16)
    model = check_sat_model(Solver(), Eq(Popcnt(x), BitVecVal(3, 16)))
    assert bin(model[x]).count("1") == 3


def test_concat_extract_constraint():
    x = BitVec("x", 8)
    y = BitVec("y", 8)
    joined = Concat(x, y)
    model = check_sat_model(Solver(), Eq(joined, BitVecVal(0xBEEF, 16)))
    assert model[x] == 0xBE
    assert model[y] == 0xEF


def test_extract_constraint():
    x = BitVec("x", 32)
    model = check_sat_model(Solver(), Eq(Extract(15, 8, x), BitVecVal(0x5A, 8)),
                            Eq(Extract(7, 0, x), BitVecVal(0x01, 8)))
    assert (model[x] >> 8) & 0xFF == 0x5A
    assert model[x] & 0xFF == 0x01


def test_boolean_structure():
    x = BitVec("x", 8)
    y = BitVec("y", 8)
    c = Or(Eq(x, BitVecVal(1, 8)), Eq(y, BitVecVal(2, 8)))
    model = check_sat_model(Solver(), c, Ne(x, BitVecVal(1, 8)))
    assert model[y] == 2


def test_push_pop():
    x = BitVec("x", 8)
    solver = Solver()
    solver.add(ULT(x, BitVecVal(10, 8)))
    solver.push()
    solver.add(UGE(x, BitVecVal(10, 8)))
    assert solver.check() == UNSAT
    solver.pop()
    assert solver.check() == SAT


def test_check_with_extra_assumptions():
    x = BitVec("x", 8)
    solver = Solver()
    solver.add(ULT(x, BitVecVal(10, 8)))
    assert solver.check(Eq(x, BitVecVal(3, 8))) == SAT
    assert solver.check(Eq(x, BitVecVal(30, 8))) == UNSAT
    # Extra constraints must not persist.
    assert solver.check() == SAT


def test_division_constraint():
    from repro.smt import UDiv
    x = BitVec("x", 8)
    model = check_sat_model(Solver(), Eq(UDiv(x, BitVecVal(3, 8)), BitVecVal(5, 8)),
                            ULT(x, BitVecVal(18, 8)))
    assert model[x] // 3 == 5


def test_shift_by_variable():
    x = BitVec("x", 8)
    s = BitVec("s", 8)
    model = check_sat_model(Solver(),
                            Eq(BitVecVal(1, 8) << s, BitVecVal(16, 8)),
                            ULT(s, BitVecVal(8, 8)))
    assert model[s] == 4


@settings(max_examples=40, deadline=None)
@given(a=st.integers(0, 0xFFFF), b=st.integers(0, 0xFFFF))
def test_property_sum_equation_solvable(a, b):
    """For any target (a+b), the solver finds operands that reach it."""
    target = (a + b) & 0xFFFF
    x = BitVec("px", 16)
    y = BitVec("py", 16)
    solver = Solver()
    solver.add(Eq(x + y, BitVecVal(target, 16)))
    assert solver.check() == SAT
    model = solver.model()
    assert (model[x] + model[y]) & 0xFFFF == target


@settings(max_examples=30, deadline=None)
@given(value=st.integers(0, 2**32 - 1))
def test_property_model_reproduces_pinned_value(value):
    x = BitVec("pinned", 32)
    solver = Solver()
    solver.add(Eq(x, BitVecVal(value, 32)))
    assert solver.check() == SAT
    assert solver.model()[x] == value


@settings(max_examples=25, deadline=None)
@given(lo=st.integers(0, 250), span=st.integers(1, 5))
def test_property_interval_witness_in_range(lo, span):
    x = BitVec("w", 8)
    hi = min(lo + span, 255)
    solver = Solver()
    from repro.smt import ULE
    solver.add(UGE(x, BitVecVal(lo, 8)))
    solver.add(ULE(x, BitVecVal(hi, 8)))
    assert solver.check() == SAT
    assert lo <= solver.model()[x] <= hi


@settings(max_examples=20, deadline=None)
@given(value=st.integers(0, 255), mask_bits=st.integers(0, 255))
def test_property_xor_inversion(value, mask_bits):
    """x ^ mask == value always has the unique solution value ^ mask."""
    x = BitVec("xv", 8)
    solver = Solver()
    solver.add(Eq(x ^ BitVecVal(mask_bits, 8), BitVecVal(value, 8)))
    assert solver.check() == SAT
    assert solver.model()[x] == value ^ mask_bits

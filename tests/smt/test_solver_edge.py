"""Edge cases of the layered solver: budgets, stats, model completion."""

import pytest

from repro.smt import (And, BitVec, BitVecVal, Eq, Ne, Or, SAT, Solver,
                       SolverStats, UGE, ULT, UNKNOWN, UNSAT, evaluate)


def test_empty_check_is_sat_with_empty_model():
    solver = Solver()
    assert solver.check() == SAT
    assert solver.model().as_dict() == {}


def test_model_defaults_unmentioned_vars_to_zero():
    x = BitVec("only", 8)
    solver = Solver()
    solver.add(Eq(x, BitVecVal(5, 8)))
    assert solver.check() == SAT
    model = solver.model()
    assert model["never_mentioned"] == 0
    assert "never_mentioned" not in model


def test_model_before_check_raises():
    with pytest.raises(RuntimeError):
        Solver().model()


def test_trivially_false_constraint():
    from repro.smt import FALSE
    solver = Solver()
    solver.add(FALSE)
    assert solver.check() == UNSAT


def test_non_boolean_constraint_rejected():
    solver = Solver()
    with pytest.raises(TypeError):
        solver.add(BitVecVal(1, 8))


def test_stats_accumulate_across_checks():
    stats = SolverStats()
    x = BitVec("sx", 8)
    for value in range(4):
        solver = Solver(stats=stats)
        solver.add(Eq(x, BitVecVal(value, 8)))
        solver.check()
    assert stats.checks == 4
    assert stats.fast_path_hits == 4
    assert stats.as_dict()["sat_calls"] == 0


def test_fast_path_declines_multi_var_atoms():
    x = BitVec("mx", 8)
    y = BitVec("my", 8)
    solver = Solver()
    solver.add(Eq(x, y))
    assert solver.check() == SAT
    assert solver.stats.sat_calls == 1  # fell through to SAT


def test_fast_path_handles_ne_chains():
    x = BitVec("nx", 4)  # 16 possible values
    solver = Solver()
    for value in range(15):
        solver.add(Ne(x, BitVecVal(value, 4)))
    assert solver.check() == SAT
    assert solver.model()["nx"] == 15
    solver.add(Ne(x, BitVecVal(15, 4)))
    assert solver.check() == UNSAT


def test_disjunction_of_ranges():
    x = BitVec("dx", 8)
    constraint = Or(ULT(x, BitVecVal(10, 8)),
                    UGE(x, BitVecVal(250, 8)))
    solver = Solver()
    solver.add(constraint)
    solver.add(UGE(x, BitVecVal(10, 8)))
    assert solver.check() == SAT
    assert solver.model()["dx"] >= 250


def test_all_values_model_validation():
    """Any SAT model must actually satisfy every constraint."""
    x = BitVec("vx", 8)
    y = BitVec("vy", 8)
    constraints = [Eq(x + y, BitVecVal(100, 8)),
                   ULT(x, BitVecVal(50, 8)),
                   UGE(y, BitVecVal(60, 8))]
    solver = Solver()
    for c in constraints:
        solver.add(c)
    assert solver.check() == SAT
    model = solver.model().as_dict()
    for c in constraints:
        assert evaluate(c, model) is True


def test_push_pop_nesting():
    x = BitVec("px", 8)
    solver = Solver()
    solver.add(ULT(x, BitVecVal(100, 8)))
    solver.push()
    solver.add(UGE(x, BitVecVal(50, 8)))
    solver.push()
    solver.add(UGE(x, BitVecVal(100, 8)))
    assert solver.check() == UNSAT
    solver.pop()
    assert solver.check() == SAT
    assert 50 <= solver.model()["px"] < 100
    solver.pop()
    assert len(solver.assertions()) == 1


def test_wide_bitvector():
    x = BitVec("wide", 128)
    big = (1 << 100) + 12345
    solver = Solver()
    solver.add(Eq(x, BitVecVal(big, 128)))
    assert solver.check() == SAT
    assert solver.model()["wide"] == big


def test_pop_without_push_raises_runtime_error():
    solver = Solver()
    with pytest.raises(RuntimeError, match="no matching push"):
        solver.pop()
    # Balanced push/pop still works afterwards.
    solver.push()
    solver.pop()
    with pytest.raises(RuntimeError):
        solver.pop()


def test_solver_cache_returns_identical_results():
    from repro.smt import configure_solver_cache
    cache = configure_solver_cache(enabled=True)
    try:
        x = BitVec("cachex", 16)
        constraint = Eq(x, BitVecVal(1234, 16))
        first = Solver()
        first.add(constraint)
        assert first.check() == SAT
        model = first.model().as_dict()
        hits_before = cache.hits
        second = Solver()
        second.add(constraint)
        assert second.check() == SAT
        assert cache.hits == hits_before + 1
        assert second.model().as_dict() == model
        assert second.stats.cache_hits == 1
    finally:
        configure_solver_cache(enabled=True)


def test_solver_cache_skips_unknown_and_respects_budget_key():
    from repro.smt import configure_solver_cache
    cache = configure_solver_cache(enabled=True)
    try:
        x = BitVec("budgx", 8)
        constraint = Eq(x, BitVecVal(7, 8))
        tight = Solver(max_conflicts=1)
        tight.add(constraint)
        tight.check()
        loose = Solver(max_conflicts=20_000)
        loose.add(constraint)
        loose.check()
        # Different budgets are distinct keys: no cross-budget hits.
        assert cache.hits == 0
        assert cache.misses == 2
    finally:
        configure_solver_cache(enabled=True)


def test_solver_cache_can_be_disabled():
    from repro.smt import configure_solver_cache, solver_cache
    try:
        assert configure_solver_cache(enabled=False) is None
        assert solver_cache() is None
        x = BitVec("nocache", 8)
        solver = Solver()
        solver.add(Eq(x, BitVecVal(3, 8)))
        assert solver.check() == SAT
        assert solver.stats.cache_hits == 0
    finally:
        configure_solver_cache(enabled=True)


def test_solver_cache_lru_eviction():
    from repro.smt import SolverCache
    cache = SolverCache(max_entries=2)
    cache.store(("a",), SAT, {})
    cache.store(("b",), SAT, {})
    cache.store(("c",), SAT, {})
    assert len(cache) == 2
    assert cache.evictions == 1
    assert cache.lookup(("a",)) is None
    assert cache.lookup(("c",)) is not None

"""Edge cases of the layered solver: budgets, stats, model completion."""

import pytest

from repro.smt import (And, BitVec, BitVecVal, Eq, Ne, Or, SAT, Solver,
                       SolverStats, UGE, ULT, UNKNOWN, UNSAT, evaluate)


def test_empty_check_is_sat_with_empty_model():
    solver = Solver()
    assert solver.check() == SAT
    assert solver.model().as_dict() == {}


def test_model_defaults_unmentioned_vars_to_zero():
    x = BitVec("only", 8)
    solver = Solver()
    solver.add(Eq(x, BitVecVal(5, 8)))
    assert solver.check() == SAT
    model = solver.model()
    assert model["never_mentioned"] == 0
    assert "never_mentioned" not in model


def test_model_before_check_raises():
    with pytest.raises(RuntimeError):
        Solver().model()


def test_trivially_false_constraint():
    from repro.smt import FALSE
    solver = Solver()
    solver.add(FALSE)
    assert solver.check() == UNSAT


def test_non_boolean_constraint_rejected():
    solver = Solver()
    with pytest.raises(TypeError):
        solver.add(BitVecVal(1, 8))


def test_stats_accumulate_across_checks():
    stats = SolverStats()
    x = BitVec("sx", 8)
    for value in range(4):
        solver = Solver(stats=stats)
        solver.add(Eq(x, BitVecVal(value, 8)))
        solver.check()
    assert stats.checks == 4
    assert stats.fast_path_hits == 4
    assert stats.as_dict()["sat_calls"] == 0


def test_fast_path_declines_multi_var_atoms():
    x = BitVec("mx", 8)
    y = BitVec("my", 8)
    solver = Solver()
    solver.add(Eq(x, y))
    assert solver.check() == SAT
    assert solver.stats.sat_calls == 1  # fell through to SAT


def test_fast_path_handles_ne_chains():
    x = BitVec("nx", 4)  # 16 possible values
    solver = Solver()
    for value in range(15):
        solver.add(Ne(x, BitVecVal(value, 4)))
    assert solver.check() == SAT
    assert solver.model()["nx"] == 15
    solver.add(Ne(x, BitVecVal(15, 4)))
    assert solver.check() == UNSAT


def test_disjunction_of_ranges():
    x = BitVec("dx", 8)
    constraint = Or(ULT(x, BitVecVal(10, 8)),
                    UGE(x, BitVecVal(250, 8)))
    solver = Solver()
    solver.add(constraint)
    solver.add(UGE(x, BitVecVal(10, 8)))
    assert solver.check() == SAT
    assert solver.model()["dx"] >= 250


def test_all_values_model_validation():
    """Any SAT model must actually satisfy every constraint."""
    x = BitVec("vx", 8)
    y = BitVec("vy", 8)
    constraints = [Eq(x + y, BitVecVal(100, 8)),
                   ULT(x, BitVecVal(50, 8)),
                   UGE(y, BitVecVal(60, 8))]
    solver = Solver()
    for c in constraints:
        solver.add(c)
    assert solver.check() == SAT
    model = solver.model().as_dict()
    for c in constraints:
        assert evaluate(c, model) is True


def test_push_pop_nesting():
    x = BitVec("px", 8)
    solver = Solver()
    solver.add(ULT(x, BitVecVal(100, 8)))
    solver.push()
    solver.add(UGE(x, BitVecVal(50, 8)))
    solver.push()
    solver.add(UGE(x, BitVecVal(100, 8)))
    assert solver.check() == UNSAT
    solver.pop()
    assert solver.check() == SAT
    assert 50 <= solver.model()["px"] < 100
    solver.pop()
    assert len(solver.assertions()) == 1


def test_wide_bitvector():
    x = BitVec("wide", 128)
    big = (1 << 100) + 12345
    solver = Solver()
    solver.add(Eq(x, BitVecVal(big, 128)))
    assert solver.check() == SAT
    assert solver.model()["wide"] == big

"""Unit tests for the hash-consed term layer."""

import pytest

from repro.smt import (And, BitVec, BitVecVal, Concat, Eq, Extract, FALSE,
                       Ite, Ne, Not, Or, Popcnt, SLT, SignExt, TRUE, UGT,
                       ULT, ZeroExt, evaluate, free_variables, substitute,
                       to_signed, to_unsigned)
from repro.smt.terms import bv_binop


def test_constants_are_interned():
    assert BitVecVal(7, 32) is BitVecVal(7, 32)
    assert BitVecVal(7, 32) is not BitVecVal(7, 64)


def test_variables_are_interned_by_name_and_width():
    assert BitVec("x", 32) is BitVec("x", 32)
    assert BitVec("x", 32) is not BitVec("y", 32)


def test_constant_folding_add():
    assert (BitVecVal(3, 8) + BitVecVal(250, 8)).const_value() == 253
    assert (BitVecVal(200, 8) + BitVecVal(100, 8)).const_value() == 44  # wraps


def test_constant_folding_signed_ops():
    a = BitVecVal(-8, 32)
    assert to_signed(a.const_value(), 32) == -8
    assert to_unsigned(-1, 8) == 255


def test_identity_rewrites():
    x = BitVec("x", 32)
    assert (x + 0) is x
    assert (x * 1) is x
    assert (x * 0).const_value() == 0
    assert (x & 0).const_value() == 0
    assert (x ^ x).const_value() == 0
    assert (x - x).const_value() == 0
    assert (x | x) is x


def test_eq_canonical_order():
    x = BitVec("x", 32)
    c = BitVecVal(5, 32)
    assert Eq(x, c) is Eq(c, x)


def test_eq_same_term_is_true():
    x = BitVec("x", 32)
    assert Eq(x, x) is TRUE
    assert Ne(x, x) is FALSE


def test_comparison_folding():
    assert ULT(BitVecVal(1, 8), BitVecVal(2, 8)) is TRUE
    assert ULT(BitVecVal(255, 8), BitVecVal(0, 8)) is FALSE
    # Signed: 255 is -1 which is < 0.
    assert SLT(BitVecVal(255, 8), BitVecVal(0, 8)) is TRUE


def test_concat_extract_roundtrip():
    hi = BitVecVal(0xAB, 8)
    lo = BitVecVal(0xCD, 8)
    both = Concat(hi, lo)
    assert both.const_value() == 0xABCD
    x = BitVec("x", 16)
    assert Extract(7, 0, Concat(BitVecVal(0, 16), x) ) is not None


def test_extract_of_concat_selects_part():
    x = BitVec("x", 8)
    y = BitVec("y", 8)
    joined = Concat(x, y)  # x is the high byte
    assert Extract(7, 0, joined) is y
    assert Extract(15, 8, joined) is x


def test_extract_of_extract_composes():
    x = BitVec("x", 32)
    outer = Extract(11, 4, Extract(23, 0, x))
    assert outer.op == "extract"
    assert outer.payload == (11, 4)
    assert outer.args[0] is x


def test_zeroext_and_signext_fold():
    assert ZeroExt(8, BitVecVal(0xFF, 8)).const_value() == 0xFF
    assert SignExt(8, BitVecVal(0xFF, 8)).const_value() == 0xFFFF


def test_boolean_simplification():
    x = BitVec("x", 8)
    p = Eq(x, BitVecVal(1, 8))
    assert And(p, TRUE) is p
    assert And(p, FALSE) is FALSE
    assert Or(p, TRUE) is TRUE
    assert Or(p, FALSE) is p
    assert Not(Not(p)) is p
    assert And(p, Not(p)) is FALSE
    assert Or(p, Not(p)) is TRUE


def test_ite_simplification():
    x = BitVec("x", 8)
    y = BitVec("y", 8)
    assert Ite(TRUE, x, y) is x
    assert Ite(FALSE, x, y) is y
    assert Ite(Eq(x, y), x, x) is x


def test_popcnt_constant():
    assert Popcnt(BitVecVal(0b1011, 8)).const_value() == 3


def test_free_variables():
    x = BitVec("x", 8)
    y = BitVec("y", 8)
    expr = (x + y) * x
    assert free_variables(expr) == {x, y}
    assert free_variables(Eq(expr, BitVecVal(0, 8))) == {x, y}


def test_substitute_resimplifies():
    x = BitVec("x", 8)
    y = BitVec("y", 8)
    expr = x + y
    bound = substitute(expr, {x: BitVecVal(1, 8), y: BitVecVal(2, 8)})
    assert bound.const_value() == 3


def test_evaluate_matches_python_semantics():
    x = BitVec("x", 8)
    y = BitVec("y", 8)
    expr = (x * y) ^ (x + y)
    got = evaluate(expr, {"x": 7, "y": 9})
    assert got == ((7 * 9) ^ (7 + 9)) & 0xFF


def test_evaluate_signed_compare():
    x = BitVec("x", 8)
    assert evaluate(SLT(x, BitVecVal(0, 8)), {"x": 0x80}) is True
    assert evaluate(UGT(x, BitVecVal(0x7F, 8)), {"x": 0x80}) is True


def test_width_mismatch_raises():
    with pytest.raises(ValueError):
        bv_binop("bvadd", BitVec("x", 8), BitVec("y", 16))
    with pytest.raises(ValueError):
        Eq(BitVec("x", 8), BitVec("y", 16))


def test_extract_bounds_checked():
    with pytest.raises(ValueError):
        Extract(8, 0, BitVec("x", 8))
    with pytest.raises(ValueError):
        Extract(3, 5, BitVec("x", 8))


def test_shift_folding_semantics():
    # Wasm: shift amounts are taken modulo the width.
    assert (BitVecVal(1, 8) << BitVecVal(10, 8)).const_value() == 4
    assert (BitVecVal(0x80, 8) >> BitVecVal(7, 8)).const_value() == 1

"""Tests for the calling-convention input inference (C3, Table 2)."""

import pytest

from repro.eosio import Abi, Asset, Name, TRANSFER_SIGNATURE
from repro.smt import BitVecVal, Model, evaluate
from repro.symbolic import SeedLayout, SymbolicMemory, scalar_width

TRANSFER_ABI = Abi.from_signatures({"transfer": TRANSFER_SIGNATURE})


def transfer_layout(memo="hello"):
    action = TRANSFER_ABI.action("transfer")
    values = [Name("player"), Name("victim"),
              Asset.from_string("5.0000 EOS"), memo]
    return SeedLayout(action, values), values


def test_scalar_widths():
    assert scalar_width("name") == 64
    assert scalar_width("uint32") == 32
    assert scalar_width("bool") == 32
    assert scalar_width("asset") is None
    assert scalar_width("string") is None


def test_variables_created_per_param():
    layout, _ = transfer_layout()
    roles = [sorted(p.vars) for p in layout.params]
    assert roles[0] == ["value"]                 # from: name
    assert roles[1] == ["value"]                 # to: name
    assert roles[2] == ["amount", "symbol"]      # quantity: asset
    assert roles[3] == [f"byte{i}" for i in range(5)]  # memo content


def test_init_frame_table2_layout():
    layout, _ = transfer_layout()
    memory = SymbolicMemory()
    # concrete args: (self, from, to, quantity_ptr, memo_ptr)
    frame = layout.init_frame(7, [111, 222, 333, 1040, 1056], memory)
    # Local slot i+1 <-> rho_i; scalars are the symbolic vars directly.
    assert frame.locals[1] is layout.params[0].vars["value"]
    assert frame.locals[2] is layout.params[1].vars["value"]
    # Pointer params keep the concrete address in the local...
    assert frame.locals[3].const_value() == 1040
    assert frame.locals[4].const_value() == 1056
    # ...and the memory holds the symbolic content at that address.
    assert memory.load(1040, 8) is layout.params[2].vars["amount"]
    assert memory.load(1048, 8) is layout.params[2].vars["symbol"]
    # String: length byte then symbolic content bytes (Table 2).
    assert memory.load(1056, 1).const_value() == 5
    assert memory.load(1057, 1) is layout.params[3].vars["byte0"]


def test_binding_constraints_reflect_seed():
    layout, values = transfer_layout()
    bindings = layout.binding_constraints()
    assert bindings[layout.params[0].vars["value"]].const_value() \
        == int(Name("player"))
    assert bindings[layout.params[2].vars["amount"]].const_value() == 50000
    assert bindings[layout.params[3].vars["byte0"]].const_value() \
        == ord("h")


def test_seed_from_model_overrides_name():
    layout, _ = transfer_layout()
    model = Model({"rho0": int(Name("attacker"))})
    new_values = layout.seed_from_model(model)
    assert new_values[0] == Name("attacker")
    assert new_values[1] == Name("victim")  # untouched


def test_seed_from_model_overrides_asset_amount():
    layout, _ = transfer_layout()
    model = Model({"rho2_amount": 123456})
    new_values = layout.seed_from_model(model)
    assert new_values[2].amount == 123456
    assert new_values[2].symbol.code == "EOS"


def test_seed_from_model_bad_symbol_keeps_base():
    layout, _ = transfer_layout()
    model = Model({"rho2_symbol": 0})  # precision 0, empty code: invalid
    new_values = layout.seed_from_model(model)
    assert new_values[2].symbol.code == "EOS"


def test_seed_from_model_rewrites_memo_bytes():
    layout, _ = transfer_layout()
    model = Model({"rho3_byte0": ord("X")})
    new_values = layout.seed_from_model(model)
    assert new_values[3] == "Xello"


def test_memo_length_is_fixed():
    # The paper's RQ4 FP mechanism: the layout cannot grow the string,
    # only rewrite its bytes.
    layout, _ = transfer_layout(memo="ab")
    assert len(layout.params[3].vars) == 2
    model = Model({"rho3_byte0": ord("z")})
    assert layout.seed_from_model(model) [3] == "zb"


def test_signed_int_round_trip():
    abi = Abi.from_signatures({"adjust": (("delta", "int64"),)})
    layout = SeedLayout(abi.action("adjust"), [-5])
    bindings = layout.binding_constraints()
    var = layout.params[0].vars["value"]
    assert bindings[var].const_value() == (1 << 64) - 5
    model = Model({"rho0": (1 << 64) - 9})
    assert layout.seed_from_model(model)[0] == -9


def test_unsupported_type_rejected():
    abi = Abi.from_signatures({"odd": (("blob", "float32"),)})
    with pytest.raises(ValueError):
        SeedLayout(abi.action("odd"), [1.0])

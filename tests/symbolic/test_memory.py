"""Tests for the concrete-address symbolic memory model (C2)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt import BitVec, BitVecVal, Eq, SAT, Solver, evaluate
from repro.symbolic import SymbolicMemory


def test_store_load_roundtrip_concrete():
    memory = SymbolicMemory()
    memory.store(100, 4, BitVecVal(0xDEADBEEF, 32))
    assert memory.load(100, 4).const_value() == 0xDEADBEEF


def test_little_endian_byte_order():
    memory = SymbolicMemory()
    memory.store(0, 4, BitVecVal(0x04030201, 32))
    assert memory.load(0, 1).const_value() == 0x01
    assert memory.load(3, 1).const_value() == 0x04


def test_partial_overwrite_merges():
    # The §3.2 example: overlapping writes at concrete addresses are
    # resolved immediately, unlike EOSAFE's symbolic-address merging.
    memory = SymbolicMemory()
    memory.store(0, 2, BitVecVal(0x0000, 16))
    memory.store(0, 2, BitVecVal(0xFFFF, 16))
    assert memory.load(0, 2).const_value() == 0xFFFF


def test_overlapping_ranges():
    memory = SymbolicMemory()
    memory.store(0, 4, BitVecVal(0xAABBCCDD, 32))
    memory.store(2, 2, BitVecVal(0x1122, 16))
    assert memory.load(0, 4).const_value() == 0x1122CCDD


def test_symbolic_store_splits_into_bytes():
    memory = SymbolicMemory()
    x = BitVec("x", 64)
    memory.store_symbol(200, x)
    # Reassembling the full width recovers x exactly (hash-consing).
    assert memory.load(200, 8) is x


def test_symbolic_partial_load():
    memory = SymbolicMemory()
    x = BitVec("x", 32)
    memory.store_symbol(0, x)
    low = memory.load(0, 2)
    assert evaluate(low, {"x": 0xABCD1234}) == 0x1234


def test_unknown_memory_becomes_symbolic_load_object():
    memory = SymbolicMemory()
    value = memory.load(500, 2)
    assert value.op == "bvvar"
    assert len(memory.symbolic_loads) == 1
    record = memory.symbolic_loads[0]
    assert record.address == 500
    assert record.size == 2


def test_repeated_unknown_load_is_stable():
    # A second load of the same unsaved bytes must see the same object.
    memory = SymbolicMemory()
    first = memory.load(500, 2)
    second = memory.load(500, 2)
    assert first is second
    assert len(memory.symbolic_loads) == 1


def test_mixed_known_unknown_load():
    memory = SymbolicMemory()
    memory.store(0, 1, BitVecVal(0xAA, 8))
    value = memory.load(0, 2)  # byte 1 is unknown
    # The solver can still constrain the mixed expression.
    solver = Solver()
    solver.add(Eq(value, BitVecVal(0x11AA, 16)))
    assert solver.check() == SAT


def test_store_bytes_concrete_region():
    memory = SymbolicMemory()
    memory.store_bytes(64, b"\x01\x02\x03")
    assert memory.load(64, 2).const_value() == 0x0201


@settings(max_examples=50, deadline=None)
@given(value=st.integers(0, 2**64 - 1), addr=st.integers(0, 1000),
       size=st.sampled_from([1, 2, 4, 8]))
def test_property_store_load_any_size(value, addr, size):
    memory = SymbolicMemory()
    memory.store(addr, size, BitVecVal(value, 64))
    loaded = memory.load(addr, size)
    assert loaded.const_value() == value & ((1 << (size * 8)) - 1)


@settings(max_examples=30, deadline=None)
@given(first=st.integers(0, 0xFFFF), second=st.integers(0, 0xFF),
       offset=st.integers(0, 1))
def test_property_last_store_wins(first, second, offset):
    memory = SymbolicMemory()
    memory.store(10, 2, BitVecVal(first, 16))
    memory.store(10 + offset, 1, BitVecVal(second, 8))
    expected = bytearray(first.to_bytes(2, "little"))
    expected[offset] = second
    assert memory.load(10, 2).const_value() == int.from_bytes(
        expected, "little")

"""Randomised differential testing: interpreter vs symbolic replay.

Generates random straight-line integer programs over the eosponser's
inputs, executes them concretely, replays the trace symbolically, and
checks that the final value the program stores agrees with the
symbolic expression evaluated at the inputs.  This sweeps the whole
pipeline — builder, encoder, instrumenter, interpreter, hook capture,
Table 3 replay semantics and the term simplifier — through operator
mixes the hand-written tests do not reach.
"""

import random

import pytest

from repro.engine.deploy import deploy_target, setup_chain
from repro.eosio import Abi, Asset, Encoder, N, Name, TRANSFER_SIGNATURE
from repro.eosio.host import HOST_API_SIGNATURES
from repro.instrument import decode_raw_trace
from repro.smt import evaluate
from repro.symbolic import SeedLayout, replay_action
from repro.wasm import FuncType, I32, I64, Instr, ModuleBuilder

# Ops safe in any operand order (no trapping): op -> stack delta source.
BINOPS = ["i64.add", "i64.sub", "i64.mul", "i64.and", "i64.or",
          "i64.xor", "i64.shl", "i64.shr_u", "i64.shr_s", "i64.rotl",
          "i64.rotr"]
UNOPS = ["i64.popcnt", "i64.clz", "i64.ctz"]
RELOPS = ["i64.eq", "i64.ne", "i64.lt_u", "i64.gt_s", "i64.le_u"]


def random_body(f, rng: random.Random) -> None:
    """Emit a random expression over (from, to, amount) into local 5,
    then store it at address 0."""
    depth = 0

    def push_leaf():
        nonlocal depth
        choice = rng.random()
        if choice < 0.3:
            f.local_get(rng.choice([1, 2]))
        elif choice < 0.5:
            f.local_get(3)
            f.emit("i64.load", 3, 0)
        else:
            f.i64_const(rng.getrandbits(rng.choice([4, 16, 48])))
        depth += 1

    push_leaf()
    for _ in range(rng.randrange(3, 14)):
        kind = rng.random()
        if kind < 0.55 or depth < 2:
            push_leaf()
            f.emit(rng.choice(BINOPS))
            depth -= 1
        elif kind < 0.75:
            f.emit(rng.choice(UNOPS))
        elif kind < 0.9:
            push_leaf()
            f.emit(rng.choice(RELOPS))
            f.emit("i64.extend_i32_u")
            depth -= 1
        else:
            f.local_set(5)
            f.local_get(5)
    f.local_set(5)
    f.i32_const(0).local_get(5).emit("i64.store", 3, 0)


def build_random_contract(seed: int):
    rng = random.Random(seed)
    builder = ModuleBuilder()
    builder.add_memory(1)

    def imp(api):
        params, results = HOST_API_SIGNATURES[api]
        return builder.import_function(
            "env", api, [t.name for t in params],
            [r.name for r in results])

    read_data = imp("read_action_data")
    data_size = imp("action_data_size")
    transfer = builder.function(
        "transfer_impl", params=["i64", "i64", "i64", "i32", "i32"],
        locals_=["i64"])
    random_body(transfer, rng)
    apply_f = builder.function("apply", params=["i64", "i64", "i64"],
                               locals_=["i32"])
    apply_f.emit("call", data_size).local_set(3)
    apply_f.i32_const(1024).local_get(3).emit("call", read_data)
    apply_f.emit("drop")
    apply_f.local_get(2).i64_const(N("transfer")).emit("i64.eq")
    apply_f.emit("if", None)
    apply_f.local_get(0)
    apply_f.i32_const(1024).emit("i64.load", 3, 0)
    apply_f.i32_const(1024).emit("i64.load", 3, 8)
    apply_f.i32_const(1024 + 16)
    apply_f.i32_const(1024 + 32)
    apply_f.i32_const(0)
    apply_f.emit("call_indirect", -1)
    apply_f.emit("end")
    builder.add_table_entry(0, transfer)
    builder.export_function("apply", apply_f)
    module = builder.build()
    sig = module.add_type(FuncType((I64, I64, I64, I32, I32), ()))
    for func in module.functions:
        for i, instr in enumerate(func.body):
            if instr.op == "call_indirect" and instr.args[0] < 0:
                func.body[i] = Instr("call_indirect", sig)
    return module, Abi.from_signatures({"transfer": TRANSFER_SIGNATURE})


@pytest.mark.parametrize("program_seed", range(25))
def test_random_program_differential(program_seed):
    module, abi = build_random_contract(program_seed)
    rng = random.Random(program_seed + 10_000)
    amount = rng.randrange(1, 1 << 33)  # within the player's funding
    chain = setup_chain()
    target = deploy_target(chain, "victim", module, abi)
    data = (Encoder().name("player").name("victim")
            .asset(Asset(amount)).string("m").bytes())
    result = chain.push_action("eosio.token", "transfer", ["player"],
                               data)
    assert result.success, result.error
    record = [r for r in result.all_records()
              if r.receiver == target.account and r.wasm_trace][0]
    events = decode_raw_trace(record.wasm_trace)
    layout = SeedLayout(abi.action("transfer"),
                        [Name("player"), Name("victim"),
                         Asset(amount), "m"])
    replay = replay_action(module, target.site_table, events, layout,
                           target.apply_index, target.import_names)
    assert replay.reached_action
    assert replay.error is None
    # The symbolic store at address 0 under the concrete inputs must
    # equal what the interpreter actually wrote.
    symbolic = replay.state.memory.load(0, 8)
    expected = int.from_bytes(
        bytes(_victim_memory(chain, target)[0:8]), "little")
    got = evaluate(symbolic, {
        "rho0": int(Name("player")), "rho1": int(Name("victim")),
        "rho2_amount": amount,
        "rho2_symbol": Asset(amount).symbol.raw,
        "rho3_byte0": ord("m"),
    })
    assert got == expected, f"program {program_seed} diverged"


def _victim_memory(chain, target):
    """Re-execute concretely to read the final memory (the chain does
    not retain instance memory, so rebuild the instance)."""
    from repro.eosio.chain import ApplyContext, Action
    from repro.eosio.host import build_host_imports
    from repro.wasm import Instance
    contract = chain.get_contract(target.account)
    # Find the last transfer action data pushed.
    last = None
    for tx in reversed(chain.transaction_log):
        for rec in tx.records:
            if rec.receiver == target.account:
                last = rec
                break
        if last:
            break
    action = Action(last.code, last.action_name, [], last.data)
    ctx = ApplyContext(chain, target.account, last.code, action, True)
    imports = build_host_imports(chain, ctx)
    for imp in contract.module.imports:
        if imp.module == "wasabi":
            imports[(imp.module, imp.name)] = contract._hook(
                chain, ctx, imp.name, contract.module.types[imp.desc])
    instance = Instance(contract.module, imports)
    instance.invoke("apply", [ctx.receiver, ctx.code, ctx.action_name])
    return instance.memory

"""Differential validation of the symbolic replay (Table 3).

The key soundness invariant of Symback: every path constraint recorded
during replay must evaluate to *true* under the concrete input that
produced the trace.  If the operational semantics of any instruction
were lifted incorrectly, a constraint would disagree with the runtime
direction and this test would catch it across randomly generated
contracts, inputs and payload kinds.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchgen import ContractConfig, generate_contract
from repro.engine.deploy import deploy_target, setup_chain
from repro.engine.seeds import Seed
from repro.engine.fuzzer import WasaiFuzzer
from repro.eosio import Asset, Name
from repro.smt import evaluate, substitute, TRUE, FALSE
from repro.symbolic import SeedLayout, replay_action


def check_path_constraints(config: ContractConfig, seed_values,
                           kind: str = "legit") -> int:
    """Replay one execution; assert all path constraints hold under
    the concrete input.  Returns the number of constraints checked."""
    generated = generate_contract(config)
    chain = setup_chain()
    target = deploy_target(chain, config.account, generated.module,
                           generated.abi)
    fuzzer = WasaiFuzzer(chain, target, rng=random.Random(0),
                         timeout_ms=1)
    fuzzer._initiate()
    abi_action = generated.abi.action("transfer")
    observation = fuzzer.execute_seed(kind, Seed("transfer", seed_values),
                                      abi_action)
    if observation is None:
        return 0
    layout = SeedLayout(abi_action, observation.executed_params)
    replay = replay_action(generated.module, target.site_table,
                           observation.events, layout,
                           target.apply_index, target.import_names)
    if not replay.reached_action:
        return 0
    assert replay.error is None
    bindings = layout.binding_constraints()
    checked = 0
    for constraint in replay.path:
        bound = substitute(constraint, bindings)
        # Constraints may still mention symbolic-load objects for
        # memory the window never wrote; those are unconstrained and
        # irrelevant to the branch directions our contracts take.
        if bound is TRUE:
            checked += 1
            continue
        assert bound is not FALSE, (
            f"path constraint contradicts the concrete run: "
            f"{constraint}")
        from repro.smt import free_variables
        leftover = free_variables(bound)
        assert all(v.payload[0].startswith("symload")
                   for v in leftover), (
            f"constraint not decided by the seed bindings: {bound}")
        checked += 1
    return checked


@pytest.mark.parametrize("config_seed", range(6))
def test_replay_consistency_random_contracts(config_seed):
    rng = random.Random(config_seed * 31 + 5)
    config = ContractConfig(
        seed=config_seed,
        fake_eos_guard=rng.random() < 0.5,
        fake_notif_guard=rng.random() < 0.5,
        use_blockinfo=rng.random() < 0.5,
        reward_scheme=rng.choice(("inline", "defer", "none")),
        maze_depth=rng.randint(0, 4),
        db_dependency=rng.random() < 0.3,
    )
    values = [Name("player"), Name("victim"),
              Asset(rng.randrange(0, 10**9)),
              "".join(chr(rng.randrange(0x21, 0x7F))
                      for _ in range(rng.randrange(1, 10)))]
    checked = check_path_constraints(config, values)
    assert checked > 0, "the replay should record some constraints"


@pytest.mark.parametrize("kind", ["legit", "direct", "fake_token",
                                  "fake_notif"])
def test_replay_consistency_all_payload_kinds(kind):
    config = ContractConfig(seed=77, fake_eos_guard=False,
                            maze_depth=2)
    values = [Name("attacker"), Name("victim"),
              Asset.from_string("3.0000 EOS"), "probe"]
    check_path_constraints(config, values, kind)


@settings(max_examples=15, deadline=None)
@given(amount=st.integers(0, 10**10),
       memo=st.text(st.characters(min_codepoint=0x21, max_codepoint=0x7E),
                    min_size=1, max_size=12))
def test_property_replay_consistency(amount, memo):
    config = ContractConfig(seed=1234, maze_depth=3,
                            reward_scheme="inline")
    values = [Name("player"), Name("victim"), Asset(amount), memo]
    check_path_constraints(config, values)


def test_obfuscated_replay_consistency():
    from repro.benchgen import obfuscate_module
    config = ContractConfig(seed=55, maze_depth=2,
                            reward_scheme="inline")
    generated = generate_contract(config)
    module = obfuscate_module(generated.module, seed=55)
    chain = setup_chain()
    target = deploy_target(chain, "victim", module, generated.abi)
    fuzzer = WasaiFuzzer(chain, target, rng=random.Random(0),
                         timeout_ms=1)
    fuzzer._initiate()
    abi_action = generated.abi.action("transfer")
    values = [Name("player"), Name("victim"),
              Asset.from_string("2.0000 EOS"), "memo"]
    observation = fuzzer.execute_seed("legit", Seed("transfer", values),
                                      abi_action)
    layout = SeedLayout(abi_action, observation.executed_params)
    replay = replay_action(module, target.site_table, observation.events,
                           layout, target.apply_index,
                           {i: imp.name for i, imp in
                            enumerate(module.imported_functions())})
    assert replay.reached_action
    assert replay.error is None
    bindings = layout.binding_constraints()
    for constraint in replay.path:
        assert substitute(constraint, bindings) is not FALSE

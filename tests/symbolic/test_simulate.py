"""Tests for trace replay (Table 3 semantics) and constraint flipping.

Uses a hand-built dispatcher contract (independent of benchgen) so the
expected symbolic artefacts are known exactly.
"""

import pytest

from repro.engine.deploy import deploy_target, setup_chain
from repro.eosio import (Abi, Asset, Encoder, N, Name, TRANSFER_SIGNATURE,
                         issue_to)
from repro.instrument import decode_raw_trace
from repro.smt import SAT, Solver, evaluate
from repro.symbolic import (SeedLayout, branch_coverage_ids, flip_queries,
                            locate_action_call, replay_action, solve_flips)
from repro.wasm import ModuleBuilder
from repro.wasm.module import Module
from repro.wasm.opcodes import Instr
from repro.wasm.types import FuncType, I32, I64


def build_manual_contract() -> tuple[Module, Abi]:
    """apply() deserialises a transfer and dispatches indirectly to an
    eosponser that branches on amount and asserts on memo byte 0."""
    builder = ModuleBuilder()
    builder.add_memory(1)
    from repro.eosio.host import HOST_API_SIGNATURES

    def imp(api):
        params, results = HOST_API_SIGNATURES[api]
        return builder.import_function(
            "env", api, [t.name for t in params], [r.name for r in results])

    read_data = imp("read_action_data")
    data_size = imp("action_data_size")
    eosio_assert = imp("eosio_assert")
    builder.add_data(256, b"bad memo\x00")

    transfer = builder.function(
        "transfer_impl", params=["i64", "i64", "i64", "i32", "i32"],
        locals_=["i64"])
    # if (amount > 100): stash amount; else nop
    transfer.local_get(3).emit("i64.load", 3, 0).local_set(5)
    transfer.local_get(5).i64_const(100).emit("i64.gt_u")
    transfer.emit("if", None)
    transfer.i32_const(0).local_get(5).emit("i64.store", 3, 64)
    transfer.emit("end")
    # eosio_assert(memo[0] == 'k')
    transfer.local_get(4).emit("i32.load8_u", 0, 1)
    transfer.i32_const(ord("k")).emit("i32.eq")
    transfer.i32_const(256)
    transfer.emit("call", eosio_assert)

    apply_f = builder.function("apply", params=["i64", "i64", "i64"],
                               locals_=["i32"])
    apply_f.emit("call", data_size).local_set(3)
    apply_f.i32_const(1024).local_get(3).emit("call", read_data)
    apply_f.emit("drop")
    apply_f.local_get(2).i64_const(N("transfer")).emit("i64.eq")
    apply_f.emit("if", None)
    apply_f.local_get(0)
    apply_f.i32_const(1024).emit("i64.load", 3, 0)
    apply_f.i32_const(1024).emit("i64.load", 3, 8)
    apply_f.i32_const(1024 + 16)
    apply_f.i32_const(1024 + 32)
    apply_f.i32_const(0)
    apply_f.emit("call_indirect", -1)
    apply_f.emit("end")
    builder.add_table_entry(0, transfer)
    builder.export_function("apply", apply_f)
    module = builder.build()
    # Fix the call_indirect type marker.
    sig = module.add_type(FuncType((I64, I64, I64, I32, I32), ()))
    for func in module.functions:
        for i, instr in enumerate(func.body):
            if instr.op == "call_indirect" and instr.args[0] < 0:
                func.body[i] = Instr("call_indirect", sig)
    abi = Abi.from_signatures({"transfer": TRANSFER_SIGNATURE})
    return module, abi


@pytest.fixture(scope="module")
def deployed():
    chain = setup_chain()
    module, abi = build_manual_contract()
    target = deploy_target(chain, "victim", module, abi)
    issue_to(chain, "eosio.token", "victim", "100.0000 EOS")
    return chain, module, abi, target


def run_transfer(chain, target, amount: str, memo: str):
    data = (Encoder().name("player").name("victim")
            .asset(Asset.from_string(amount)).string(memo).bytes())
    result = chain.push_action("eosio.token", "transfer", ["player"], data)
    record = [r for r in result.all_records()
              if r.receiver == target.account and r.wasm_trace][0]
    return decode_raw_trace(record.wasm_trace), result


def make_layout(abi, amount: str, memo: str):
    return SeedLayout(abi.action("transfer"),
                      [Name("player"), Name("victim"),
                       Asset.from_string(amount), memo])


def test_locate_action_call(deployed):
    chain, module, abi, target = deployed
    events, _ = run_transfer(chain, target, "0.0200 EOS", "kilo")
    located = locate_action_call(events, target.site_table,
                                 target.apply_index)
    assert located is not None
    _, func_id, args = located
    # 3 imports + transfer_impl at local index 0.
    assert func_id == module.num_imported_functions
    assert args[0] == N("victim")     # self
    assert args[1] == N("player")    # from
    assert args[3] == 1024 + 16       # quantity pointer


def test_replay_records_branch_and_assert(deployed):
    chain, module, abi, target = deployed
    events, _ = run_transfer(chain, target, "0.0200 EOS", "kilo")
    layout = make_layout(abi, "0.0200 EOS", "kilo")
    replay = replay_action(module, target.site_table, events, layout,
                           target.apply_index, target.import_names)
    assert replay.reached_action
    assert replay.error is None
    kinds = [b.kind for b in replay.branches]
    assert kinds == ["if", "assert"]
    branch = replay.branches[0]
    assert branch.taken == 1  # 200 > 100
    # The branch condition constrains the symbolic amount.
    assert evaluate(branch.condition, {"rho2_amount": 200}) is True
    assert evaluate(branch.condition, {"rho2_amount": 5}) is False


def test_replay_memory_uses_concrete_addresses(deployed):
    chain, module, abi, target = deployed
    events, _ = run_transfer(chain, target, "0.0200 EOS", "kilo")
    layout = make_layout(abi, "0.0200 EOS", "kilo")
    replay = replay_action(module, target.site_table, events, layout,
                           target.apply_index, target.import_names)
    # The i64.store stashed the symbolic amount at address 64.
    stored = replay.state.memory.load(64, 8)
    assert evaluate(stored, {"rho2_amount": 200}) == 200


def test_failed_assert_generates_flippable_constraint(deployed):
    chain, module, abi, target = deployed
    events, result = run_transfer(chain, target, "0.0200 EOS", "zzzz")
    assert not result.success  # the memo assert fired
    layout = make_layout(abi, "0.0200 EOS", "zzzz")
    replay = replay_action(module, target.site_table, events, layout,
                           target.apply_index, target.import_names)
    asserts = [b for b in replay.branches if b.kind == "assert"]
    assert asserts[-1].taken == 0
    assert asserts[-1].flipped is not None
    queries = flip_queries(replay)
    seeds = solve_flips(queries, layout, "transfer")
    fixed = [s for s in seeds if s.values[3].startswith("k")]
    assert fixed, "the solver should rewrite memo[0] to 'k'"


def test_flip_solves_branch_to_other_side(deployed):
    chain, module, abi, target = deployed
    events, _ = run_transfer(chain, target, "0.0200 EOS", "kilo")
    layout = make_layout(abi, "0.0200 EOS", "kilo")
    replay = replay_action(module, target.site_table, events, layout,
                           target.apply_index, target.import_names)
    queries = flip_queries(replay)
    seeds = solve_flips(queries, layout, "transfer")
    amounts = [s.values[2].amount for s in seeds]
    assert any(a <= 100 for a in amounts), amounts


def test_flip_queries_respect_explored_set(deployed):
    chain, module, abi, target = deployed
    events, _ = run_transfer(chain, target, "0.0200 EOS", "kilo")
    layout = make_layout(abi, "0.0200 EOS", "kilo")
    replay = replay_action(module, target.site_table, events, layout,
                           target.apply_index, target.import_names)
    all_queries = flip_queries(replay)
    explored = {(q.branch.site.func_index, q.branch.site.pc,
                 not bool(q.branch.taken)) for q in all_queries}
    assert flip_queries(replay, explored) == []


def test_branch_coverage_ids(deployed):
    chain, module, abi, target = deployed
    big, _ = run_transfer(chain, target, "0.0200 EOS", "kilo")
    small, _ = run_transfer(chain, target, "0.0001 EOS", "kilo")
    cover_big = branch_coverage_ids(target.site_table, big)
    cover_small = branch_coverage_ids(target.site_table, small)
    # Same sites, opposite directions on the amount branch.
    assert cover_big != cover_small
    assert len(cover_big | cover_small) > len(cover_big)


def test_replay_ignores_traces_without_dispatch(deployed):
    chain, module, abi, target = deployed
    # Push an unknown action: the dispatcher never call_indirects.
    result = chain.push_action(target.account, "unknownact", ["player"],
                               b"")
    record = [r for r in result.all_records()
              if r.receiver == target.account][0]
    events = decode_raw_trace(record.wasm_trace)
    layout = make_layout(abi, "1.0000 EOS", "kilo")
    replay = replay_action(module, target.site_table, events, layout,
                           target.apply_index, target.import_names)
    assert not replay.reached_action
    assert replay.branches == []

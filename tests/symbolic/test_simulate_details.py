"""Focused replay tests: br_table, select, globals, nested local calls.

These instruction shapes do not all occur in the generated benchmark
contracts, so they get dedicated hand-built contracts here to pin the
Table 3 semantics.
"""

import pytest

from repro.engine.deploy import deploy_target, setup_chain
from repro.eosio import Abi, Asset, Encoder, N, Name, TRANSFER_SIGNATURE
from repro.eosio.host import HOST_API_SIGNATURES
from repro.instrument import decode_raw_trace
from repro.smt import evaluate
from repro.symbolic import SeedLayout, replay_action
from repro.wasm import FuncType, I32, I64, Instr, ModuleBuilder


def build_contract(body_emitter, helper_emitter=None):
    """Dispatcher + one eosponser whose body ``body_emitter`` writes.

    The eosponser signature matches the generated contracts:
    (self i64, from i64, to i64, quantity_ptr i32, memo_ptr i32).
    """
    builder = ModuleBuilder()
    builder.add_memory(1)

    def imp(api):
        params, results = HOST_API_SIGNATURES[api]
        return builder.import_function(
            "env", api, [t.name for t in params],
            [r.name for r in results])

    read_data = imp("read_action_data")
    data_size = imp("action_data_size")
    imp("eosio_assert")
    builder.add_global("i64", mutable=True, init=0)

    helper = None
    if helper_emitter is not None:
        helper = builder.function("helper", params=["i64"],
                                  results=["i64"])
        helper_emitter(helper)

    transfer = builder.function(
        "transfer_impl", params=["i64", "i64", "i64", "i32", "i32"],
        locals_=["i64"])
    body_emitter(transfer, helper)

    apply_f = builder.function("apply", params=["i64", "i64", "i64"],
                               locals_=["i32"])
    apply_f.emit("call", data_size).local_set(3)
    apply_f.i32_const(1024).local_get(3).emit("call", read_data)
    apply_f.emit("drop")
    apply_f.local_get(2).i64_const(N("transfer")).emit("i64.eq")
    apply_f.emit("if", None)
    apply_f.local_get(0)
    apply_f.i32_const(1024).emit("i64.load", 3, 0)
    apply_f.i32_const(1024).emit("i64.load", 3, 8)
    apply_f.i32_const(1024 + 16)
    apply_f.i32_const(1024 + 32)
    apply_f.i32_const(0)
    apply_f.emit("call_indirect", -1)
    apply_f.emit("end")
    builder.add_table_entry(0, transfer)
    builder.export_function("apply", apply_f)
    module = builder.build()
    sig = module.add_type(FuncType((I64, I64, I64, I32, I32), ()))
    for func in module.functions:
        for i, instr in enumerate(func.body):
            if instr.op == "call_indirect" and instr.args[0] < 0:
                func.body[i] = Instr("call_indirect", sig)
    return module, Abi.from_signatures({"transfer": TRANSFER_SIGNATURE})


def replay_with(module, abi, amount="0.0005 EOS", memo="abc"):
    chain = setup_chain()
    target = deploy_target(chain, "victim", module, abi)
    data = (Encoder().name("player").name("victim")
            .asset(Asset.from_string(amount)).string(memo).bytes())
    result = chain.push_action("eosio.token", "transfer", ["player"],
                               data)
    record = [r for r in result.all_records()
              if r.receiver == target.account and r.wasm_trace][0]
    events = decode_raw_trace(record.wasm_trace)
    layout = SeedLayout(abi.action("transfer"),
                        [Name("player"), Name("victim"),
                         Asset.from_string(amount), memo])
    replay = replay_action(module, target.site_table, events, layout,
                           target.apply_index, target.import_names)
    return replay, result


def test_br_table_replay_pins_index():
    def body(f, helper):
        # br_table over (amount % 3).
        f.emit("block", None)
        f.emit("block", None)
        f.emit("block", None)
        f.local_get(3).emit("i64.load", 3, 0)
        f.i64_const(3).emit("i64.rem_u")
        f.emit("i32.wrap_i64")
        f.emit("br_table", (0, 1), 2)
        f.emit("end")
        f.emit("return")
        f.emit("end")
        f.emit("return")
        f.emit("end")
    module, abi = build_contract(body)
    replay, result = replay_with(module, abi, amount="0.0005 EOS")
    assert replay.reached_action and replay.error is None
    tables = [b for b in replay.branches if b.kind == "br_table"]
    assert len(tables) == 1
    assert tables[0].taken == 5 % 3
    # The path constraint fixes the symbolic index to the taken arm.
    assert evaluate(tables[0].condition, {"rho2_amount": 5}) is True
    assert evaluate(tables[0].condition, {"rho2_amount": 6}) is False


def test_select_replay():
    def body(f, helper):
        # local5 = select(from, to, amount > 100); store to memory.
        f.local_get(1)
        f.local_get(2)
        f.local_get(3).emit("i64.load", 3, 0)
        f.i64_const(100).emit("i64.gt_u")
        f.emit("select")
        f.local_set(5)
        f.i32_const(0).local_get(5).emit("i64.store", 3, 0)
    module, abi = build_contract(body)
    replay, _ = replay_with(module, abi, amount="0.0500 EOS")  # 500>100
    stored = replay.state.memory.load(0, 8)
    got = evaluate(stored, {"rho0": 111, "rho1": 222,
                            "rho2_amount": 500})
    assert got == 111  # amount > 100 selects `from`


def test_global_set_get_replay():
    def body(f, helper):
        f.local_get(1)
        f.emit("global.set", 0)
        f.emit("global.get", 0)
        f.local_set(5)
        f.i32_const(8).local_get(5).emit("i64.store", 3, 0)
    module, abi = build_contract(body)
    replay, _ = replay_with(module, abi)
    stored = replay.state.memory.load(8, 8)
    assert evaluate(stored, {"rho0": 0xBEEF}) == 0xBEEF


def test_nested_local_call_replay():
    def helper_emitter(h):
        # helper(x) = x * 2 + 1
        h.local_get(0).i64_const(2).emit("i64.mul")
        h.i64_const(1).emit("i64.add")

    def body(f, helper):
        f.local_get(1)
        f.call(helper)
        f.local_set(5)
        f.i32_const(16).local_get(5).emit("i64.store", 3, 0)

    module, abi = build_contract(body, helper_emitter)
    replay, _ = replay_with(module, abi)
    stored = replay.state.memory.load(16, 8)
    # The symbolic return of the helper flows through μ_r (§3.4.3).
    assert evaluate(stored, {"rho0": 21}) == 43


def test_recursive_local_call_replay():
    def helper_emitter(h):
        # helper(x) = x == 0 ? 0 : helper(x-1) + 1  (identity on small x)
        h.local_get(0)
        h.emit("i64.eqz")
        h.emit("if", "i64")
        h.i64_const(0)
        h.emit("else")
        h.local_get(0).i64_const(1).emit("i64.sub")
        h.call("helper")
        h.i64_const(1).emit("i64.add")
        h.emit("end")

    def body(f, helper):
        f.i64_const(3)
        f.call(helper)
        f.local_set(5)
        f.i32_const(24).local_get(5).emit("i64.store", 3, 0)

    module, abi = build_contract(body, helper_emitter)
    replay, _ = replay_with(module, abi)
    assert replay.error is None
    stored = replay.state.memory.load(24, 8)
    assert stored.const_value() == 3

"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


def test_gen_writes_artifacts(tmp_path, capsys):
    out = tmp_path / "victim"
    code = main(["gen", "--out", str(out), "--no-fake-eos-guard"])
    assert code == 0
    assert out.with_suffix(".wasm").exists()
    abi = json.loads(out.with_suffix(".abi.json").read_text())
    assert any(a["name"] == "transfer" for a in abi["actions"])
    assert "fake_eos" in capsys.readouterr().out


def test_gen_then_scan_vulnerable(tmp_path, capsys):
    out = tmp_path / "victim"
    main(["gen", "--out", str(out), "--no-fake-eos-guard", "--blockinfo",
          "--reward", "inline"])
    capsys.readouterr()
    code = main(["scan", str(out.with_suffix(".wasm")),
                 "--abi", str(out.with_suffix(".abi.json")),
                 "--timeout-ms", "8000"])
    output = capsys.readouterr().out
    assert code == 1  # vulnerable => nonzero exit
    assert "Fake EOS" in output
    assert "VULNERABLE" in output


def test_scan_patched_contract_clean(tmp_path, capsys):
    out = tmp_path / "safe"
    main(["gen", "--out", str(out), "--reward", "defer"])
    capsys.readouterr()
    code = main(["scan", str(out.with_suffix(".wasm")),
                 "--abi", str(out.with_suffix(".abi.json")),
                 "--timeout-ms", "8000"])
    assert code == 0
    assert "no issues found" in capsys.readouterr().out


def test_scan_with_eosafe(tmp_path, capsys):
    out = tmp_path / "victim"
    main(["gen", "--out", str(out), "--no-auth-check"])
    capsys.readouterr()
    code = main(["scan", str(out.with_suffix(".wasm")),
                 "--abi", str(out.with_suffix(".abi.json")),
                 "--tool", "eosafe"])
    assert code == 1
    assert "Missing Authorization" in capsys.readouterr().out


def test_gen_obfuscated_and_verified(tmp_path):
    out = tmp_path / "hard"
    code = main(["gen", "--out", str(out), "--obfuscate",
                 "--verification"])
    assert code == 0
    from repro.wasm import parse_module, validate_module
    validate_module(parse_module(out.with_suffix(".wasm").read_bytes()))


def test_bench_table4_tiny(capsys):
    code = main(["bench", "table4", "--scale", "0.004",
                 "--timeout-ms", "5000"])
    assert code == 0
    output = capsys.readouterr().out
    assert "wasai" in output
    assert "eosafe" in output
    assert "Total" in output


def test_bench_table4_parallel_jobs(capsys):
    code = main(["bench", "table4", "--scale", "0.004",
                 "--timeout-ms", "5000", "--jobs", "2"])
    assert code == 0
    output = capsys.readouterr().out
    assert "throughput (jobs=2)" in output
    assert "Total" in output


def test_bench_journal_and_resume(tmp_path, capsys):
    journal = tmp_path / "t4.jsonl"
    base = ["bench", "table4", "--scale", "0.004",
            "--timeout-ms", "5000", "--journal", str(journal)]
    assert main(base) == 0
    first = capsys.readouterr().out
    assert journal.exists() and journal.read_text().count("\n") > 0

    assert main(base + ["--resume"]) == 0
    resumed = capsys.readouterr().out
    # The metrics tables (everything before the throughput block) are
    # byte-identical; only the timing block may differ.
    assert resumed.split("--- throughput")[0] \
        == first.split("--- throughput")[0]


def test_bench_resume_requires_journal(capsys):
    code = main(["bench", "table4", "--scale", "0.004", "--resume"])
    assert code == 2
    assert "requires --journal" in capsys.readouterr().err


def test_bench_resilience_flags_accepted(capsys):
    code = main(["bench", "table4", "--scale", "0.004",
                 "--timeout-ms", "5000", "--max-retries", "2",
                 "--quarantine-after", "4", "--backoff-s", "0.1",
                 "--no-degrade"])
    assert code == 0
    assert "Total" in capsys.readouterr().out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])

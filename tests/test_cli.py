"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


def test_gen_writes_artifacts(tmp_path, capsys):
    out = tmp_path / "victim"
    code = main(["gen", "--out", str(out), "--no-fake-eos-guard"])
    assert code == 0
    assert out.with_suffix(".wasm").exists()
    abi = json.loads(out.with_suffix(".abi.json").read_text())
    assert any(a["name"] == "transfer" for a in abi["actions"])
    assert "fake_eos" in capsys.readouterr().out


def test_gen_then_scan_vulnerable(tmp_path, capsys):
    out = tmp_path / "victim"
    main(["gen", "--out", str(out), "--no-fake-eos-guard", "--blockinfo",
          "--reward", "inline"])
    capsys.readouterr()
    code = main(["scan", str(out.with_suffix(".wasm")),
                 "--abi", str(out.with_suffix(".abi.json")),
                 "--timeout-ms", "8000"])
    output = capsys.readouterr().out
    assert code == 1  # vulnerable => nonzero exit
    assert "Fake EOS" in output
    assert "VULNERABLE" in output


def test_scan_patched_contract_clean(tmp_path, capsys):
    out = tmp_path / "safe"
    main(["gen", "--out", str(out), "--reward", "defer"])
    capsys.readouterr()
    code = main(["scan", str(out.with_suffix(".wasm")),
                 "--abi", str(out.with_suffix(".abi.json")),
                 "--timeout-ms", "8000"])
    assert code == 0
    assert "no issues found" in capsys.readouterr().out


def test_scan_with_eosafe(tmp_path, capsys):
    out = tmp_path / "victim"
    main(["gen", "--out", str(out), "--no-auth-check"])
    capsys.readouterr()
    code = main(["scan", str(out.with_suffix(".wasm")),
                 "--abi", str(out.with_suffix(".abi.json")),
                 "--tool", "eosafe"])
    assert code == 1
    assert "Missing Authorization" in capsys.readouterr().out


def test_gen_obfuscated_and_verified(tmp_path):
    out = tmp_path / "hard"
    code = main(["gen", "--out", str(out), "--obfuscate",
                 "--verification"])
    assert code == 0
    from repro.wasm import parse_module, validate_module
    validate_module(parse_module(out.with_suffix(".wasm").read_bytes()))


def test_bench_table4_tiny(capsys):
    code = main(["bench", "table4", "--scale", "0.004",
                 "--timeout-ms", "5000"])
    assert code == 0
    output = capsys.readouterr().out
    assert "wasai" in output
    assert "eosafe" in output
    assert "Total" in output


def test_bench_table4_parallel_jobs(capsys):
    code = main(["bench", "table4", "--scale", "0.004",
                 "--timeout-ms", "5000", "--jobs", "2"])
    assert code == 0
    output = capsys.readouterr().out
    assert "throughput (jobs=2)" in output
    assert "Total" in output


def test_bench_journal_and_resume(tmp_path, capsys):
    journal = tmp_path / "t4.jsonl"
    base = ["bench", "table4", "--scale", "0.004",
            "--timeout-ms", "5000", "--journal", str(journal)]
    assert main(base) == 0
    first = capsys.readouterr().out
    assert journal.exists() and journal.read_text().count("\n") > 0

    assert main(base + ["--resume"]) == 0
    resumed = capsys.readouterr().out
    # The metrics tables (everything before the throughput block) are
    # byte-identical; only the timing block may differ.
    assert resumed.split("--- throughput")[0] \
        == first.split("--- throughput")[0]


def test_bench_resume_requires_journal(capsys):
    code = main(["bench", "table4", "--scale", "0.004", "--resume"])
    assert code == 2
    assert "requires --journal" in capsys.readouterr().err


def test_bench_resilience_flags_accepted(capsys):
    code = main(["bench", "table4", "--scale", "0.004",
                 "--timeout-ms", "5000", "--max-retries", "2",
                 "--quarantine-after", "4", "--backoff-s", "0.1",
                 "--no-degrade"])
    assert code == 0
    assert "Total" in capsys.readouterr().out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_bench_reports_latency_percentiles(capsys):
    code = main(["bench", "table4", "--scale", "0.004",
                 "--timeout-ms", "5000"])
    assert code == 0
    output = capsys.readouterr().out
    assert "latency task" in output
    assert "p95=" in output


def test_bench_fail_on_quarantine_gates_exit_code(monkeypatch, capsys):
    import repro.cli as cli_mod

    def fake_evaluate_corpus(samples, **kwargs):
        kwargs["perf"].quarantined = 2
        return {}

    monkeypatch.setattr(cli_mod, "evaluate_corpus",
                        fake_evaluate_corpus)
    # Without the flag the (lossy) run still exits 0 — the historical
    # gap this flag closes.
    code = main(["bench", "table4", "--scale", "0.004"])
    assert code == 0
    capsys.readouterr()
    code = main(["bench", "table4", "--scale", "0.004",
                 "--fail-on-quarantine"])
    assert code == 3
    assert "quarantined" in capsys.readouterr().err


def test_unknown_oracle_family_is_usage_error(tmp_path, capsys):
    out = tmp_path / "victim"
    main(["gen", "--out", str(out)])
    capsys.readouterr()
    with pytest.raises(SystemExit) as excinfo:
        main(["scan", str(out.with_suffix(".wasm")),
              "--abi", str(out.with_suffix(".abi.json")),
              "--oracles", "token_arith,bogus"])
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert "unknown oracle family 'bogus'" in err
    assert "Traceback" not in err


def test_scan_with_semantic_oracles(tmp_path, capsys):
    out = tmp_path / "safe"
    main(["gen", "--out", str(out), "--reward", "none",
          "--maze-depth", "0"])
    capsys.readouterr()
    code = main(["scan", str(out.with_suffix(".wasm")),
                 "--abi", str(out.with_suffix(".abi.json")),
                 "--timeout-ms", "5000", "--oracles", "all"])
    output = capsys.readouterr().out
    assert code == 0
    assert "Token Arithmetic" in output
    assert "On-Chain Data Consistency" in output


def test_bench_semantic_with_family_fp_gate(capsys):
    code = main(["bench", "semantic", "--scale", "0.02",
                 "--timeout-ms", "8000", "--fail-on-family-fp"])
    assert code == 0
    output = capsys.readouterr().out
    assert "token_arith" in output
    assert "data_consistency" in output
    assert "eosafe" not in output  # comparison tools sit this one out


def test_bench_family_fp_gate_exit_code(monkeypatch, capsys):
    import repro.cli as cli_mod
    from repro.metrics import MetricsTable

    def fake_evaluate_corpus(samples, **kwargs):
        table = MetricsTable("wasai", ("token_arith",))
        table.record("token_arith", False, True)  # one clean FP
        return {"wasai": table}

    monkeypatch.setattr(cli_mod, "evaluate_corpus",
                        fake_evaluate_corpus)
    code = main(["bench", "semantic", "--scale", "0.02"])
    assert code == 0  # without the gate the FP only shows in the table
    capsys.readouterr()
    code = main(["bench", "semantic", "--scale", "0.02",
                 "--fail-on-family-fp"])
    assert code == 6
    assert "wasai/token_arith: 1" in capsys.readouterr().err


def test_submit_against_unreachable_daemon_fails_cleanly(tmp_path,
                                                         capsys):
    out = tmp_path / "victim"
    main(["gen", "--out", str(out)])
    capsys.readouterr()
    # No daemon on this port: the client retries the connection
    # failure, then surfaces a typed ServiceError — which the CLI
    # turns into a clean nonzero exit, never a raw URLError traceback.
    code = main(["submit", str(out.with_suffix(".wasm")),
                 "--abi", str(out.with_suffix(".abi.json")),
                 "--url", "http://127.0.0.1:9"])
    assert code == 4
    err = capsys.readouterr().err
    assert "unreachable" in err
    assert "Traceback" not in err


def test_serve_and_submit_round_trip(tmp_path, capsys):
    import threading

    from repro.service import (ScanService, ScanServiceConfig,
                               make_server)

    out = tmp_path / "victim"
    main(["gen", "--out", str(out), "--no-fake-eos-guard"])
    capsys.readouterr()
    service = ScanService(
        store=str(tmp_path / "store.db"),
        config=ScanServiceConfig(workers=1, poll_s=0.02,
                                 default_timeout_ms=4000.0))
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.05},
                              daemon=True)
    thread.start()
    try:
        host, port = server.server_address[:2]
        url = f"http://{host}:{port}"
        code = main(["submit", str(out.with_suffix(".wasm")),
                     "--abi", str(out.with_suffix(".abi.json")),
                     "--url", url, "--wait"])
        output = capsys.readouterr().out
        assert code == 1  # vulnerable contract => nonzero, like scan
        assert "outcome: queued" in output
        assert '"state": "done"' in output
        code = main(["status", "--stats", "--url", url])
        assert code == 0
        assert '"completed": 1' in capsys.readouterr().out
    finally:
        server.shutdown()
        server.server_close()
        service.stop(wait_s=5)
        thread.join(timeout=5)

"""Tests for the evaluation harness."""

import pytest

from repro import ContractConfig, generate_contract
from repro.benchgen import build_table4_corpus
from repro.harness import (evaluate_corpus, run_eosafe, run_eosfuzzer,
                           run_wasai)


@pytest.fixture(scope="module")
def contract():
    return generate_contract(ContractConfig(seed=4, fake_eos_guard=False))


def test_run_wasai_returns_complete_run(contract):
    run = run_wasai(contract.module, contract.abi, timeout_ms=8_000)
    assert run.report.iterations > 0
    assert run.scan.detected("fake_eos")
    assert run.target.account == run.report.target_account


def test_run_eosfuzzer_uses_eosfuzzer_oracles(contract):
    run = run_eosfuzzer(contract.module, contract.abi, timeout_ms=8_000)
    finding = run.scan.findings["missauth"]
    assert "no MissAuth oracle" in finding.evidence


def test_run_eosafe_is_static(contract):
    result = run_eosafe(contract.module)
    assert result.detected("fake_eos")


def test_runs_are_deterministic(contract):
    first = run_wasai(contract.module, contract.abi, timeout_ms=6_000,
                      rng_seed=9)
    second = run_wasai(contract.module, contract.abi, timeout_ms=6_000,
                       rng_seed=9)
    assert first.report.iterations == second.report.iterations
    assert first.report.covered == second.report.covered
    assert first.scan.detected_types() == second.scan.detected_types()


def test_evaluate_corpus_builds_all_tables():
    samples = build_table4_corpus(scale=0.004)
    tables = evaluate_corpus(samples, timeout_ms=6_000)
    assert set(tables) == {"wasai", "eosfuzzer", "eosafe"}
    for table in tables.values():
        assert table.total().total == len(samples)


def test_evaluate_corpus_tool_subset():
    samples = build_table4_corpus(scale=0.004)
    tables = evaluate_corpus(samples, tools=("eosafe",),
                             timeout_ms=6_000)
    assert set(tables) == {"eosafe"}

"""Tests for the metrics module."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import Confusion, MetricsTable


def test_confusion_counts():
    c = Confusion()
    c.record(True, True)    # TP
    c.record(True, False)   # FN
    c.record(False, True)   # FP
    c.record(False, False)  # TN
    assert (c.tp, c.fn, c.fp, c.tn) == (1, 1, 1, 1)
    assert c.total == 4


def test_perfect_scores():
    c = Confusion(tp=10, tn=10)
    assert c.precision == 1.0
    assert c.recall == 1.0
    assert c.f1 == 1.0


def test_zero_denominators():
    c = Confusion()
    assert c.precision == 0.0
    assert c.recall == 0.0
    assert c.f1 == 0.0


def test_paper_total_row():
    # WASAI's Table 4 totals: 1,643 TP, 0 FP, 27 FN over 3,340.
    c = Confusion(tp=1643, fp=0, tn=1670, fn=27)
    assert c.precision == 1.0
    assert round(c.recall, 3) == 0.984
    assert round(c.f1, 3) == 0.992


def test_merged():
    a = Confusion(tp=1, fp=2, tn=3, fn=4)
    b = Confusion(tp=10, fp=20, tn=30, fn=40)
    m = a.merged(b)
    assert (m.tp, m.fp, m.tn, m.fn) == (11, 22, 33, 44)


def test_metrics_table_totals():
    table = MetricsTable("tool", ("a", "b"))
    table.record("a", True, True)
    table.record("b", True, False)
    total = table.total()
    assert total.tp == 1
    assert total.fn == 1
    text = table.format()
    assert "tool" in text
    assert "Total" in text


@settings(max_examples=50, deadline=None)
@given(tp=st.integers(0, 50), fp=st.integers(0, 50),
       tn=st.integers(0, 50), fn=st.integers(0, 50))
def test_property_f1_is_harmonic_mean(tp, fp, tn, fn):
    c = Confusion(tp, fp, tn, fn)
    p, r = c.precision, c.recall
    if p + r:
        assert abs(c.f1 - 2 * p * r / (p + r)) < 1e-12
    assert 0.0 <= c.f1 <= 1.0


def test_percentile_interpolates():
    from repro.metrics import percentile
    samples = [1.0, 2.0, 3.0, 4.0]
    assert percentile([], 50) == 0.0
    assert percentile([7.0], 95) == 7.0
    assert percentile(samples, 0) == 1.0
    assert percentile(samples, 100) == 4.0
    assert percentile(samples, 50) == 2.5
    assert abs(percentile(samples, 95) - 3.85) < 1e-9
    # Unsorted input is handled (sorted internally).
    assert percentile([4.0, 1.0, 3.0, 2.0], 50) == 2.5


def test_throughput_resilience_counters():
    from repro.metrics import ThroughputStats
    stats = ThroughputStats()
    # Zeroed counters exist in the dict form but stay out of the
    # human-readable output — a healthy daemon's report is quiet.
    doc = stats.as_dict()
    assert doc["resilience"] == {
        "worker_restarts": 0,
        "breaker_trips": 0,
        "breaker_recoveries": 0,
        "integrity_repairs": 0,
        "journal_compactions": 0,
    }
    assert "self-healing" not in stats.format()

    stats.worker_restarts = 2
    stats.breaker_trips = 1
    stats.breaker_recoveries = 1
    stats.integrity_repairs = 3
    stats.journal_compactions = 4
    doc = stats.as_dict()
    assert doc["resilience"]["worker_restarts"] == 2
    assert doc["resilience"]["integrity_repairs"] == 3
    text = stats.format()
    assert "self-healing" in text
    assert "2 worker restarts" in text
    assert "1 breaker trips" in text
    assert "4 journal compactions" in text


def test_throughput_latency_percentiles():
    from repro.metrics import ThroughputStats
    stats = ThroughputStats()
    for sample in (0.1, 0.2, 0.3, 0.4):
        stats.record_latency("task", sample)
    stats.record_latency("fuzz", 0.05)
    tiles = stats.latency_percentiles()
    assert tiles["task"]["n"] == 4
    assert abs(tiles["task"]["p50_s"] - 0.25) < 1e-9
    assert tiles["task"]["max_s"] == 0.4
    assert tiles["fuzz"]["p50_s"] == 0.05
    as_dict = stats.as_dict()
    assert as_dict["latency"]["task"]["n"] == 4
    text = stats.format()
    assert "latency task" in text
    assert "p95=" in text


def test_throughput_traceir_counters():
    from repro.metrics import ThroughputStats
    stats = ThroughputStats()
    doc = stats.as_dict()
    assert doc["traceir"] == {
        "traces_stored": 0,
        "reverdicts": 0,
        "trace_corruptions": 0,
        "verdict_drift": 0,
        "insufficient_surface": 0,
    }
    assert "trace IR" not in stats.format()

    stats.traces_stored = 5
    stats.reverdicts = 3
    stats.trace_corruptions = 1
    stats.verdict_drift = 2
    doc = stats.as_dict()
    assert doc["traceir"]["traces_stored"] == 5
    assert doc["traceir"]["verdict_drift"] == 2
    stats.insufficient_surface = 4
    doc = stats.as_dict()
    assert doc["traceir"]["insufficient_surface"] == 4
    text = stats.format()
    assert "trace IR" in text
    assert "5 traces stored" in text
    assert "3 reverdicts" in text
    assert "1 trace corruptions" in text
    assert "2 verdict drift" in text
    assert "4 insufficient surface" in text


def test_metrics_table_family_fp_query():
    table = MetricsTable("wasai", ("token_arith", "permission"))
    table.record("token_arith", True, True)    # TP
    table.record("token_arith", False, True)   # FP on a clean variant
    table.record("permission", False, False)   # TN
    assert table.false_positives() == {"token_arith": 1}
    assert table.false_positives(("permission",)) == {}
    assert table.false_positives(("token_arith",)) == {"token_arith": 1}
    text = table.format()
    assert "TP=" in text and "FP=" in text and "FN=" in text

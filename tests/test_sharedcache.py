"""The shared on-disk cache tier (repro.sharedcache) and its two
consumers: the instrumentation cache and the solver cache."""

from __future__ import annotations

import os
import pickle

import pytest

from repro.sharedcache import (SharedDiskCache, configure_shared_cache,
                               shared_cache_dir)


@pytest.fixture
def cache_dir(tmp_path):
    previous = shared_cache_dir()
    configure_shared_cache(tmp_path)
    yield str(tmp_path)
    configure_shared_cache(previous)


class TestSharedDiskCache:
    def test_disabled_without_directory(self):
        previous = shared_cache_dir()
        configure_shared_cache(None)
        try:
            cache = SharedDiskCache("t")
            assert not cache.enabled
            assert cache.get("k") is None
            assert cache.put("k", 1) is False
        finally:
            configure_shared_cache(previous)

    def test_pickle_round_trip(self, cache_dir):
        cache = SharedDiskCache("t")
        assert cache.put("abc123", {"x": (1, 2)}) is True
        assert cache.get("abc123") == {"x": (1, 2)}
        assert cache.hits == 1

    def test_json_round_trip(self, cache_dir):
        cache = SharedDiskCache("t", serializer="json")
        cache.put("abc123", {"status": "sat", "model": {"a": 7}})
        assert cache.get("abc123") == {"status": "sat",
                                       "model": {"a": 7}}

    def test_miss_and_corruption_degrade(self, cache_dir):
        cache = SharedDiskCache("t")
        assert cache.get("missing") is None
        assert cache.misses == 1
        cache.put("bad", [1, 2, 3])
        path = cache._path("bad")
        with open(path, "wb") as handle:
            handle.write(b"\x00not a pickle")
        assert cache.get("bad") is None
        assert cache.errors == 1

    def test_hostile_key_is_hashed(self, cache_dir):
        cache = SharedDiskCache("t")
        cache.put("../../escape", 42)
        assert cache.get("../../escape") == 42
        # Nothing may land outside the namespace directory.
        root = os.path.join(cache_dir, "t")
        for name in os.listdir(root):
            assert "/" not in name and not name.startswith(".")

    def test_explicit_directory_ignores_global(self, tmp_path):
        cache = SharedDiskCache("t", directory=str(tmp_path))
        assert cache.enabled
        cache.put("k1", "v")
        assert SharedDiskCache("t", directory=str(tmp_path)).get("k1") == "v"

    def test_dynamic_reconfiguration(self, tmp_path):
        previous = shared_cache_dir()
        try:
            cache = SharedDiskCache("t")
            configure_shared_cache(None)
            assert not cache.enabled
            configure_shared_cache(tmp_path)
            assert cache.enabled
        finally:
            configure_shared_cache(previous)


class TestValTypePickling:
    def test_singletons_survive_pickling(self):
        from repro.wasm.types import F32, F64, FuncType, I32, I64
        for singleton in (I32, I64, F32, F64):
            assert pickle.loads(pickle.dumps(singleton)) is singleton
        func_type = FuncType((I32, I64), (I32,))
        assert pickle.loads(pickle.dumps(func_type)) == func_type


class TestInstrumentationDiskTier:
    def test_second_cache_hits_disk(self, cache_dir):
        from repro.benchgen.corpus import build_table4_corpus
        from repro.engine.deploy import (InstrumentationCache,
                                         module_content_hash)
        module = build_table4_corpus(scale=0.01)[0].module
        first = InstrumentationCache()
        instrumented, sites = first.instrument(module)
        assert first.disk.hits == 0 and first.disk.misses == 1
        # A different cache object (stands in for a sibling worker)
        # must find the entry on disk instead of re-instrumenting.
        second = InstrumentationCache()
        instrumented2, sites2 = second.instrument(module)
        assert second.disk.hits == 1
        assert module_content_hash(instrumented2) \
            == module_content_hash(instrumented)
        assert len(sites2.sites) == len(sites.sites)

    def test_unpickled_module_executes(self, cache_dir):
        from repro.benchgen.corpus import build_table4_corpus
        from repro.engine.deploy import InstrumentationCache
        from tests.wasm.test_translate_differential import \
            _apply_fingerprint
        sample = build_table4_corpus(scale=0.01)[0]
        warm = InstrumentationCache()
        warm.instrument(sample.module)
        # Force the disk path: fresh memory cache, warm disk.
        cold = InstrumentationCache()
        cold.instrument(sample.module)
        assert cold.disk.hits == 1
        # The fingerprint helper instruments through the process-global
        # cache; what matters here is simply that a campaign over the
        # sample still runs to completion with the disk tier active.
        trace, calls, error, fuel, memory = _apply_fingerprint(
            sample.module, sample.contract.abi, translate=True)
        assert trace


class TestSolverDiskTier:
    def _hard_query(self):
        # xor of two variables defeats the interval fast path, so the
        # query reaches the bit-blasting layer (and the disk tier).
        from repro.smt.terms import BitVec, Eq
        a = BitVec("dsk_a", 8)
        b = BitVec("dsk_b", 8)
        return Eq(a ^ b, 0x3C)

    def test_solver_writes_and_reads_disk(self, cache_dir):
        from repro.smt.solver import (SAT, Solver, configure_solver_cache,
                                      solver_cache)
        configure_solver_cache(True)
        try:
            solver = Solver()
            constraint = self._hard_query()
            solver.add(constraint)
            assert solver.check() == SAT
            model = solver.model()
            assert solver_cache().disk.misses == 1
            # Fresh in-memory cache, same disk: the solve is skipped.
            configure_solver_cache(True)
            solver2 = Solver()
            solver2.add(constraint)
            assert solver2.check() == SAT
            assert solver_cache().disk.hits == 1
            assert solver2.model().as_dict() == model.as_dict()
        finally:
            configure_solver_cache(True)

    def test_constraint_digest_is_stable_and_dag_aware(self):
        from repro.smt.solver import constraint_digest
        from repro.smt.terms import BitVec, Eq
        a = BitVec("dsk_c", 32)
        shared = a + 1
        deep = Eq(shared + shared, 10)
        first = constraint_digest([deep], 1000)
        second = constraint_digest([deep], 1000)
        assert first == second
        assert constraint_digest([deep], 2000) != first

"""Tests for the wild-study pipeline."""

import pytest

from repro.study import format_wild_study, run_wild_study


@pytest.fixture(scope="module")
def study():
    return run_wild_study(scale=0.02, timeout_ms=12_000)


def test_study_flags_majority(study):
    assert study.total >= 4
    assert study.flagged_fraction >= 0.5


def test_study_per_type_counts_complete(study):
    counts = study.per_type_counts()
    # The paper's five plus the semantic families (present in every
    # scan doc; the wild study runs the default paper-five set, so
    # the semantic rows are simply zero here).
    assert {"fake_eos", "fake_notif", "missauth",
            "blockinfodep", "rollback"} <= set(counts)
    assert sum(counts.values()) >= len(study.flagged)


def test_study_maintenance_partition(study):
    assert len(study.patched) <= len(study.still_operating)
    assert study.exposed_count \
        == len(study.still_operating) - len(study.patched)


def test_study_ground_truth_agreement_high(study):
    assert study.ground_truth_agreement() >= 0.9


def test_study_formatting(study):
    text = format_wild_study(study)
    assert "flagged vulnerable" in text
    assert "still exposed" in text

"""Trace IR codec: round-trip properties and a corrupted-blob corpus.

The contract under test is absolute: a blob either decodes to exactly
the events that were encoded, or it raises the typed, non-retryable
:class:`TraceCorruption` — never garbage events, never a raw
``struct``/``IndexError`` leak.
"""

import random

import pytest

from repro.instrument.hooks import HookEvent
from repro.resilience import TraceCorruption
from repro.traceir import (TRACEIR_MAGIC, TRACEIR_VERSION, decode_events,
                           encode_events, iter_events)
from repro.traceir.codec import (STREAM_EVENTS, STREAM_PACK,
                                 EventStreamEncoder, pack_sections,
                                 unpack_sections)


def random_events(rng: random.Random, count: int) -> list[HookEvent]:
    """A stream covering every kind, operand type and value regime."""
    events = []
    for _ in range(count):
        kind = rng.choice(("instr", "post", "begin", "end"))
        if kind in ("begin", "end"):
            events.append(HookEvent(kind, None, rng.randrange(0, 512), ()))
            continue
        operands = []
        for _ in range(rng.randrange(0, 4)):
            if rng.random() < 0.25:
                operands.append(rng.choice(
                    (0.0, -1.5, 3.14159, 1e300, -2.0 ** 63)))
            else:
                operands.append(rng.choice((
                    0, 1, -1, 2 ** 31 - 1, -(2 ** 31), 2 ** 63 - 1,
                    -(2 ** 63), 2 ** 64 - 1, rng.randrange(-10 ** 6,
                                                           10 ** 6))))
        events.append(HookEvent(kind, rng.randrange(0, 4096), None,
                                tuple(operands)))
    return events


def assert_same_events(decoded, original):
    assert len(decoded) == len(original)
    for got, want in zip(decoded, original):
        assert got.kind == want.kind
        assert got.site_id == want.site_id
        assert got.func_id == want.func_id
        assert got.operands == want.operands


@pytest.mark.parametrize("seed", [0, 1, 2, 7])
def test_roundtrip_random_streams(seed):
    rng = random.Random(seed)
    events = random_events(rng, 200)
    blob = encode_events(events)
    assert blob.startswith(TRACEIR_MAGIC)
    assert_same_events(decode_events(blob), events)


def test_roundtrip_empty_stream():
    blob = encode_events([])
    assert decode_events(blob) == []


def test_encode_is_byte_stable():
    events = random_events(random.Random(3), 64)
    assert encode_events(events) == encode_events(events)


def test_iter_events_matches_decode():
    events = random_events(random.Random(5), 50)
    blob = encode_events(events)
    assert_same_events(list(iter_events(blob)), events)


def test_bool_operands_encode_as_ints():
    blob = encode_events([HookEvent("instr", 1, None, (True, False))])
    (event,) = decode_events(blob)
    assert event.operands == (1, 0)


def test_unencodable_operand_rejected_at_encode_time():
    encoder = EventStreamEncoder()
    with pytest.raises(ValueError):
        encoder.add(HookEvent("instr", 1, None, ("not-a-number",)))


# -- the corrupted-blob corpus ---------------------------------------------

def reference_blob() -> bytes:
    return encode_events(random_events(random.Random(11), 40))


def assert_corrupt(mutant: bytes, what: str) -> None:
    """Every mutant must raise TraceCorruption — nothing else, and
    never a successful decode."""
    try:
        decode_events(mutant)
    except TraceCorruption as exc:
        assert exc.retryable is False
        assert exc.stage == "trace"
        return
    except Exception as exc:  # noqa: BLE001 - the failure we hunt
        pytest.fail(f"{what}: raw {type(exc).__name__} leaked: {exc}")
    pytest.fail(f"{what}: corrupted blob decoded successfully")


def test_every_truncation_is_typed():
    blob = reference_blob()
    for length in range(len(blob)):
        assert_corrupt(blob[:length], f"truncation to {length} bytes")


def test_bit_flips_never_decode_to_garbage():
    """Flip bits across every byte position: each mutant must either
    raise TraceCorruption or (never) decode.  CRC coverage makes a
    silent wrong decode impossible."""
    blob = reference_blob()
    for position in range(len(blob)):
        for bit in (0, 3, 7):
            mutant = bytearray(blob)
            mutant[position] ^= 1 << bit
            assert_corrupt(bytes(mutant),
                           f"bit {bit} flipped at byte {position}")


def test_unknown_version_rejected():
    blob = bytearray(reference_blob())
    assert blob[4] == TRACEIR_VERSION
    blob[4] = TRACEIR_VERSION + 1
    assert_corrupt(bytes(blob), "version bump")


def test_wrong_magic_rejected():
    blob = bytearray(reference_blob())
    blob[:4] = b"NOPE"
    assert_corrupt(bytes(blob), "wrong magic")


def test_wrong_stream_kind_rejected():
    blob = bytearray(reference_blob())
    blob[5] = STREAM_PACK
    assert_corrupt(bytes(blob), "stream kind swap")


def test_trailing_bytes_rejected():
    assert_corrupt(reference_blob() + b"\x00", "trailing byte")


def test_checksum_smash_is_typed():
    """Zero out each section's stored CRC32 in turn."""
    blob = reference_blob()
    smashed = 0
    for start in range(len(blob) - 4):
        mutant = bytearray(blob)
        mutant[start:start + 4] = b"\x00\x00\x00\x00"
        if bytes(mutant) == blob:
            continue
        assert_corrupt(bytes(mutant), f"4 bytes zeroed at {start}")
        smashed += 1
    assert smashed > 0


def test_unknown_section_id_rejected():
    blob = pack_sections(STREAM_EVENTS, [(42, b"payload")])
    with pytest.raises(TraceCorruption):
        unpack_sections(blob, STREAM_EVENTS, known_sections=(1, 2, 3))


def test_duplicate_section_rejected():
    blob = pack_sections(STREAM_EVENTS, [(1, b"a"), (1, b"b")])
    with pytest.raises(TraceCorruption):
        unpack_sections(blob, STREAM_EVENTS, known_sections=(1,))


def test_corruption_carries_diagnostics():
    with pytest.raises(TraceCorruption) as info:
        decode_events(b"WT")
    message = str(info.value)
    assert "trace" in repr(info.value.stage) or info.value.stage == "trace"
    assert message  # human-readable, non-empty diagnostic

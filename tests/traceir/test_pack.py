"""Trace packs: a real campaign distilled, replayed, and proven to
re-scan without any fuzzing.

The byte-identity property the re-verdict pipeline rests on: replaying
the scanner oracles over a decoded pack produces a scan whose JSON doc
equals the fresh campaign's scan doc byte-for-byte.
"""

import random

import pytest

from repro.benchgen import ContractConfig, generate_contract
from repro.harness import run_wasai
from repro.parallel import CampaignTask, run_campaign_task
from repro.resilience import (CampaignError, Fault, ResiliencePolicy,
                              TraceCorruption, clear_fault_plan,
                              install_fault_plan)
from repro.resilience.journal import _scan_to_doc
from repro.traceir import (build_trace_pack, decode_pack, encode_pack,
                           replay_scan)

FAST_TIMEOUT_MS = 4_000.0

# Replay must never touch an execution stage: arm every one of them.
EXEC_STAGE_FAULTS = tuple(
    Fault(stage=stage, kind="error")
    for stage in ("ingest", "instrument", "deploy", "fuzz",
                  "symback", "solve"))


@pytest.fixture(autouse=True)
def clean_fault_state():
    clear_fault_plan()
    yield
    clear_fault_plan()


@pytest.fixture(scope="module")
def campaign():
    generated = generate_contract(
        ContractConfig(seed=0, fake_eos_guard=False, maze_depth=2))
    run = run_wasai(generated.module, generated.abi,
                    timeout_ms=FAST_TIMEOUT_MS)
    return generated, run


def test_pack_roundtrip_replays_identically(campaign):
    _generated, run = campaign
    pack = build_trace_pack(run.report, run.target)
    blob = encode_pack(pack)
    replayed = replay_scan(decode_pack(blob))
    assert _scan_to_doc(replayed) == _scan_to_doc(run.scan)
    assert replayed.findings["fake_eos"].detected


def test_pack_encode_is_byte_stable(campaign):
    _generated, run = campaign
    pack = build_trace_pack(run.report, run.target)
    first = encode_pack(pack)
    again = encode_pack(build_trace_pack(run.report, run.target))
    assert first == again
    # decode -> re-encode of the decoded pack is also stable
    assert encode_pack(decode_pack(first)) == first


def test_replay_runs_zero_execution_stages(campaign):
    """With every execution-stage chokepoint armed to fail, replay
    still succeeds — proof it fuzzes, instruments and solves nothing.
    The control run shows the same plan kills a fresh campaign."""
    generated, run = campaign
    blob = encode_pack(build_trace_pack(run.report, run.target))
    install_fault_plan(*EXEC_STAGE_FAULTS)
    replayed = replay_scan(decode_pack(blob))
    assert _scan_to_doc(replayed) == _scan_to_doc(run.scan)
    # Control: a fresh campaign under the same plan dies on an
    # execution stage, proving the armed chokepoints do fire.
    with pytest.raises(CampaignError):
        run_wasai(generated.module, generated.abi,
                  timeout_ms=FAST_TIMEOUT_MS)


def test_campaign_task_carries_trace_and_provenance():
    generated = generate_contract(
        ContractConfig(seed=1, fake_eos_guard=False, maze_depth=3))
    task = CampaignTask(generated.module, generated.abi, ("wasai",),
                        FAST_TIMEOUT_MS, 1, policy=ResiliencePolicy(),
                        sample_key="pack-test", capture_traces=True)
    result = run_campaign_task(task)
    from repro.scanner import ORACLE_VERSION
    from repro.traceir import TRACEIR_VERSION
    assert result.provenance == {
        "oracle_version": ORACLE_VERSION,
        "traceir_version": TRACEIR_VERSION,
        "oracles": ["fake_eos", "fake_notif", "missauth",
                    "blockinfodep", "rollback"],
        "source": "fresh"}
    blob = result.traces["wasai"]
    replayed = replay_scan(decode_pack(blob))
    assert _scan_to_doc(replayed) == _scan_to_doc(result.scans["wasai"])


def test_semantic_surface_roundtrips(campaign):
    _generated, run = campaign
    pack = build_trace_pack(run.report, run.target)
    assert pack.semantic is not None
    decoded = decode_pack(encode_pack(pack))
    assert decoded.semantic == pack.semantic
    assert decoded.surfaces() == pack.surfaces()
    assert {"db_writes", "db_state", "host_args",
            "record_chain"} <= decoded.surfaces()


def test_pack_without_semantic_decodes_and_replays_paper5(campaign):
    import dataclasses
    _generated, run = campaign
    pack = build_trace_pack(run.report, run.target, semantic=False)
    assert pack.semantic is None
    decoded = decode_pack(encode_pack(pack))
    assert decoded.semantic is None
    replayed = replay_scan(decoded)  # paper five need no surface
    assert _scan_to_doc(replayed) == _scan_to_doc(run.scan)
    # Byte-identical to stripping the surface off a full pack.
    full = build_trace_pack(run.report, run.target)
    bare = dataclasses.replace(full, semantic=None)
    assert encode_pack(bare) == encode_pack(pack)


def test_semantic_oracles_on_bare_pack_insufficient(campaign):
    from repro.semoracle import InsufficientSurface
    _generated, run = campaign
    pack = build_trace_pack(run.report, run.target, semantic=False)
    with pytest.raises(InsufficientSurface) as excinfo:
        replay_scan(decode_pack(encode_pack(pack)), oracles="all")
    assert "db_writes" in excinfo.value.missing
    # A single family demands only its own surface.
    with pytest.raises(InsufficientSurface) as excinfo:
        replay_scan(pack, oracles="permission")
    assert excinfo.value.missing == frozenset({"host_args"})


def test_replay_with_semantic_families_matches_fresh(campaign):
    _generated, run = campaign
    fresh = run_wasai(_generated.module, _generated.abi,
                      timeout_ms=FAST_TIMEOUT_MS, oracles="all")
    pack = build_trace_pack(fresh.report, fresh.target)
    replayed = replay_scan(decode_pack(encode_pack(pack)),
                           oracles="all")
    assert _scan_to_doc(replayed) == _scan_to_doc(fresh.scan)
    assert set(replayed.findings) >= {"token_arith", "permission",
                                      "notif_chain",
                                      "data_consistency"}


def test_corrupted_pack_raises_typed(campaign):
    _generated, run = campaign
    blob = encode_pack(build_trace_pack(run.report, run.target))
    rng = random.Random(5)
    for _ in range(32):
        mutant = bytearray(blob)
        mutant[rng.randrange(len(blob))] ^= 1 << rng.randrange(8)
        if bytes(mutant) == blob:
            continue
        with pytest.raises(TraceCorruption):
            decode_pack(bytes(mutant))
    for length in (0, 4, len(blob) // 2, len(blob) - 1):
        with pytest.raises(TraceCorruption):
            decode_pack(blob[:length])

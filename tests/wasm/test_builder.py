"""Tests for the module builder."""

import pytest

from repro.wasm import Instance, ModuleBuilder, validate_module


def test_call_by_builder_reference():
    builder = ModuleBuilder()
    helper = builder.function("helper", results=["i32"])
    helper.i32_const(7)
    main = builder.function("main", results=["i32"])
    main.call(helper)
    builder.export_function("main", main)
    assert Instance(builder.build()).invoke("main") == [7]


def test_call_by_name_resolves_forward_references():
    builder = ModuleBuilder()
    main = builder.function("main", results=["i32"])
    main.call("later")  # defined below
    later = builder.function("later", results=["i32"])
    later.i32_const(9)
    builder.export_function("main", main)
    assert Instance(builder.build()).invoke("main") == [9]


def test_call_unknown_name_raises():
    builder = ModuleBuilder()
    f = builder.function("f")
    f.call("missing")
    with pytest.raises(KeyError):
        builder.build()


def test_import_function_deduplicates():
    builder = ModuleBuilder()
    first = builder.import_function("env", "log", ["i32"], [])
    second = builder.import_function("env", "log", ["i32"], [])
    assert first == second
    f = builder.function("f")
    f.emit("nop")
    assert len(builder.build().imports) == 1


def test_imports_shift_local_function_indices():
    builder = ModuleBuilder()
    builder.import_function("env", "a", [], [])
    builder.import_function("env", "b", [], [])
    helper = builder.function("helper", results=["i32"])
    helper.i32_const(1)
    main = builder.function("main", results=["i32"])
    main.call(helper)
    builder.export_function("main", main)
    module = builder.build()
    call = [i for i in module.functions[1].body if i.op == "call"][0]
    assert call.args[0] == 2  # two imports before the helper


def test_add_local_returns_running_index():
    builder = ModuleBuilder()
    f = builder.function("f", params=["i32", "i32"], locals_=["i64"])
    assert f.add_local("i32") == 3  # 2 params + 1 declared local
    assert f.add_local("i64") == 4


def test_sparse_table_entries():
    builder = ModuleBuilder()
    a = builder.function("a", results=["i32"])
    a.i32_const(1)
    b = builder.function("b", results=["i32"])
    b.i32_const(2)
    builder.add_table_entry(0, a)
    builder.add_table_entry(5, b)  # gap between runs
    f = builder.function("f")
    f.emit("nop")
    module = builder.build()
    validate_module(module)
    assert len(module.elements) == 2
    assert module.elements[0].offset[0].args[0] == 0
    assert module.elements[1].offset[0].args[0] == 5


def test_const_helpers_wrap_to_signed():
    builder = ModuleBuilder()
    f = builder.function("f", results=["i64"])
    f.i64_const(0xFFFFFFFFFFFFFFFF)
    builder.export_function("f", f)
    module = builder.build()
    assert module.functions[0].body[0].args[0] == -1
    assert Instance(module).invoke("f") == [0xFFFFFFFFFFFFFFFF]


def test_global_initialisers():
    builder = ModuleBuilder()
    g1 = builder.add_global("i64", mutable=False, init=-3)
    g2 = builder.add_global("f64", mutable=True, init=1.5)
    f = builder.function("f", results=["i64"])
    f.emit("global.get", g1)
    builder.export_function("f", f)
    instance = Instance(builder.build())
    assert instance.invoke("f") == [0xFFFFFFFFFFFFFFFD]
    assert instance.globals[g2] == 1.5


def test_start_function_runs_on_instantiation():
    builder = ModuleBuilder()
    g = builder.add_global("i32", mutable=True, init=0)
    init = builder.function("init")
    init.i32_const(42).emit("global.set", g)
    builder.set_start(init)
    f = builder.function("get", results=["i32"])
    f.emit("global.get", g)
    builder.export_function("get", f)
    assert Instance(builder.build()).invoke("get") == [42]

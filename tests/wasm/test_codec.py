"""Round-trip tests for the binary encoder/parser and LEB128 codecs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wasm import (Instr, Module, ModuleBuilder, ParseError,
                        encode_module, parse_module)
from repro.wasm.leb128 import (Reader, decode_signed, decode_unsigned,
                               encode_signed, encode_unsigned)


# -- LEB128 ------------------------------------------------------------------

@given(st.integers(0, 2**64 - 1))
@settings(max_examples=200, deadline=None)
def test_leb128_unsigned_roundtrip(value):
    encoded = encode_unsigned(value)
    decoded, offset = decode_unsigned(encoded)
    assert decoded == value
    assert offset == len(encoded)


@given(st.integers(-(2**63), 2**63 - 1))
@settings(max_examples=200, deadline=None)
def test_leb128_signed_roundtrip(value):
    encoded = encode_signed(value)
    decoded, offset = decode_signed(encoded)
    assert decoded == value
    assert offset == len(encoded)


def test_leb128_known_vectors():
    assert encode_unsigned(0) == b"\x00"
    assert encode_unsigned(624485) == b"\xe5\x8e\x26"
    assert encode_signed(-123456) == b"\xc0\xbb\x78"


def test_leb128_negative_rejected_for_unsigned():
    with pytest.raises(ValueError):
        encode_unsigned(-1)


def test_leb128_truncated_raises():
    with pytest.raises(ValueError):
        decode_unsigned(b"\x80")


def test_reader_name():
    reader = Reader(b"\x05hello")
    assert reader.name() == "hello"


# -- module round-trip -----------------------------------------------------------

def simple_module() -> Module:
    builder = ModuleBuilder()
    builder.import_function("env", "log", params=["i32"], results=[])
    builder.add_memory(1, 4)
    builder.add_global("i64", mutable=True, init=7)
    add = builder.function("add", params=["i32", "i32"], results=["i32"])
    add.local_get(0).local_get(1).emit("i32.add")
    main = builder.function("main", params=[], results=["i32"],
                            locals_=["i32", "i64"])
    main.i32_const(2).i32_const(3).call(add)
    builder.export_function("add", add)
    builder.export_function("main", main)
    builder.add_table_entry(0, add)
    builder.add_data(16, b"payload")
    return builder.build()


def test_roundtrip_preserves_structure():
    module = simple_module()
    data = encode_module(module)
    parsed = parse_module(data)
    assert len(parsed.types) == len(module.types)
    assert len(parsed.imports) == 1
    assert parsed.imports[0].module == "env"
    assert len(parsed.functions) == 2
    assert parsed.functions[0].body == module.functions[0].body
    assert parsed.functions[1].body == module.functions[1].body
    assert parsed.memories[0].limits.minimum == 1
    assert parsed.memories[0].limits.maximum == 4
    assert len(parsed.globals) == 1
    assert [e.name for e in parsed.exports] == ["add", "main"]
    assert parsed.elements[0].func_indices == [1]
    assert parsed.data_segments[0].data == b"payload"


def test_roundtrip_is_stable():
    data = encode_module(simple_module())
    assert encode_module(parse_module(data)) == data


def test_bad_magic_rejected():
    with pytest.raises(ParseError):
        parse_module(b"\x00bad\x01\x00\x00\x00")


def test_bad_version_rejected():
    with pytest.raises(ParseError):
        parse_module(b"\x00asm\x02\x00\x00\x00")


def test_unknown_opcode_rejected():
    # Craft a module with an invalid opcode byte in a function body.
    module = simple_module()
    data = bytearray(encode_module(module))
    # 0xFE is unused in the MVP opcode space.
    idx = data.find(bytes([0x6A]))  # i32.add
    data[idx] = 0xFE
    with pytest.raises(ParseError):
        parse_module(bytes(data))


def test_control_instructions_roundtrip():
    builder = ModuleBuilder()
    f = builder.function("f", params=["i32"], results=["i32"])
    f.emit("block", "i32")
    f.emit("local.get", 0)
    f.emit("if", "i32")
    f.i32_const(1)
    f.emit("else")
    f.i32_const(2)
    f.emit("end")
    f.emit("end")
    builder.export_function("f", f)
    module = builder.build()
    parsed = parse_module(encode_module(module))
    assert parsed.functions[0].body == module.functions[0].body


def test_br_table_roundtrip():
    builder = ModuleBuilder()
    f = builder.function("f", params=["i32"], results=[])
    f.emit("block", None)
    f.emit("block", None)
    f.local_get(0)
    f.emit("br_table", (0, 1), 1)
    f.emit("end")
    f.emit("end")
    module = builder.build()
    parsed = parse_module(encode_module(module))
    br = [i for i in parsed.functions[0].body if i.op == "br_table"][0]
    assert br.args == ((0, 1), 1)


def test_float_constants_roundtrip():
    builder = ModuleBuilder()
    f = builder.function("f", results=["f64"])
    f.emit("f64.const", 3.5)
    module = builder.build()
    parsed = parse_module(encode_module(module))
    assert parsed.functions[0].body[0].args[0] == 3.5


def test_negative_i32_const_roundtrip():
    builder = ModuleBuilder()
    f = builder.function("f", results=["i32"])
    f.i32_const(-5)
    parsed = parse_module(builder.build_bytes())
    assert parsed.functions[0].body[0].args[0] == -5


def test_large_unsigned_i64_const_roundtrip():
    # Values >= 2^63 must wrap to their signed representation.
    builder = ModuleBuilder()
    f = builder.function("f", results=["i64"])
    f.i64_const(0xFFFFFFFFFFFFFFFF)
    parsed = parse_module(builder.build_bytes())
    assert parsed.functions[0].body[0].args[0] == -1


def test_custom_sections_skipped():
    data = bytearray(encode_module(simple_module()))
    # Append a custom section: id 0, size, name "meta", payload.
    custom = b"\x04meta\xde\xad"
    data.extend(b"\x00" + bytes([len(custom)]) + custom)
    parsed = parse_module(bytes(data))
    assert len(parsed.functions) == 2

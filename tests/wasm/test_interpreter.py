"""Semantics tests for the Wasm interpreter."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wasm import (ExecutionLimits, FuncType, HostFunc, I32, Instance,
                        ModuleBuilder, TrapIndirectCall, TrapIntegerDivide,
                        TrapIntegerOverflow, TrapMemoryOutOfBounds,
                        TrapOutOfFuel, TrapStackOverflow, TrapUnreachable)


def run_expr(emit, params=(), results=("i32",), args=(), locals_=()):
    """Build a one-function module, run it, return the single result."""
    builder = ModuleBuilder()
    builder.add_memory(1)
    f = builder.function("f", params=params, results=results, locals_=locals_)
    emit(f)
    builder.export_function("f", f)
    instance = Instance(builder.build())
    out = instance.invoke("f", args)
    return out[0] if out else None


def test_i32_add_wraps():
    result = run_expr(lambda f: f.i32_const(0xFFFFFFFF).i32_const(2)
                      .emit("i32.add"))
    assert result == 1


def test_i64_mul():
    result = run_expr(lambda f: f.i64_const(1 << 40).i64_const(4)
                      .emit("i64.mul"), results=("i64",))
    assert result == 1 << 42


def test_signed_division_semantics():
    # -7 / 2 == -3 in Wasm (truncating).
    result = run_expr(lambda f: f.i32_const(-7).i32_const(2)
                      .emit("i32.div_s"))
    assert result == 0xFFFFFFFD  # -3 unsigned


def test_division_by_zero_traps():
    with pytest.raises(TrapIntegerDivide):
        run_expr(lambda f: f.i32_const(1).i32_const(0).emit("i32.div_u"))


def test_div_overflow_traps():
    with pytest.raises(TrapIntegerOverflow):
        run_expr(lambda f: f.i32_const(-0x80000000).i32_const(-1)
                 .emit("i32.div_s"))


def test_rem_s_sign_follows_dividend():
    result = run_expr(lambda f: f.i32_const(-7).i32_const(3)
                      .emit("i32.rem_s"))
    assert result == 0xFFFFFFFF  # -1


def test_comparisons_signed_vs_unsigned():
    assert run_expr(lambda f: f.i32_const(-1).i32_const(1)
                    .emit("i32.lt_s")) == 1
    assert run_expr(lambda f: f.i32_const(-1).i32_const(1)
                    .emit("i32.lt_u")) == 0


def test_popcnt_clz_ctz():
    assert run_expr(lambda f: f.i32_const(0b10110).emit("i32.popcnt")) == 3
    assert run_expr(lambda f: f.i32_const(1).emit("i32.clz")) == 31
    assert run_expr(lambda f: f.i32_const(8).emit("i32.ctz")) == 3
    assert run_expr(lambda f: f.i64_const(0).emit("i64.clz"),
                    results=("i64",)) == 64


def test_rotations():
    assert run_expr(lambda f: f.i32_const(0x80000001).i32_const(1)
                    .emit("i32.rotl")) == 0x00000003
    assert run_expr(lambda f: f.i32_const(1).i32_const(1)
                    .emit("i32.rotr")) == 0x80000000


def test_shift_amount_modulo_width():
    assert run_expr(lambda f: f.i32_const(1).i32_const(33)
                    .emit("i32.shl")) == 2


def test_shr_s_preserves_sign():
    assert run_expr(lambda f: f.i32_const(-8).i32_const(1)
                    .emit("i32.shr_s")) == 0xFFFFFFFC


def test_select():
    result = run_expr(lambda f: f.i32_const(10).i32_const(20).i32_const(1)
                      .emit("select"))
    assert result == 10
    result = run_expr(lambda f: f.i32_const(10).i32_const(20).i32_const(0)
                      .emit("select"))
    assert result == 20


def test_locals_and_tee():
    def body(f):
        f.i32_const(5).emit("local.tee", 0)
        f.local_get(0).emit("i32.add")
    assert run_expr(body, locals_=("i32",)) == 10


def test_globals():
    builder = ModuleBuilder()
    g = builder.add_global("i32", mutable=True, init=41)
    f = builder.function("f", results=["i32"])
    f.emit("global.get", g).i32_const(1).emit("i32.add")
    f.emit("global.set", g)
    f.emit("global.get", g)
    builder.export_function("f", f)
    instance = Instance(builder.build())
    assert instance.invoke("f") == [42]
    assert instance.invoke("f") == [43]  # state persists


# -- memory --------------------------------------------------------------------

def test_store_load_roundtrip():
    def body(f):
        f.i32_const(64).i64_const(0x1122334455667788).emit("i64.store", 3, 0)
        f.i32_const(64).emit("i64.load", 3, 0)
    assert run_expr(body, results=("i64",)) == 0x1122334455667788


def test_little_endian_layout():
    def body(f):
        f.i32_const(0).i32_const(0x0403_0201).emit("i32.store", 2, 0)
        f.i32_const(0).emit("i32.load8_u", 0, 0)
    assert run_expr(body) == 0x01


def test_load8_signed_extension():
    def body(f):
        f.i32_const(0).i32_const(0xFF).emit("i32.store8", 0, 0)
        f.i32_const(0).emit("i32.load8_s", 0, 0)
    assert run_expr(body) == 0xFFFFFFFF


def test_load16_unsigned():
    def body(f):
        f.i32_const(0).i32_const(0xFFFF).emit("i32.store16", 1, 0)
        f.i32_const(0).emit("i32.load16_u", 1, 0)
    assert run_expr(body) == 0xFFFF


def test_store_with_offset_immediate():
    def body(f):
        f.i32_const(8).i32_const(0xAB).emit("i32.store8", 0, 4)
        f.i32_const(12).emit("i32.load8_u", 0, 0)
    assert run_expr(body) == 0xAB


def test_out_of_bounds_load_traps():
    with pytest.raises(TrapMemoryOutOfBounds):
        run_expr(lambda f: f.i32_const(0xFFFFFF).emit("i32.load", 2, 0))


def test_memory_size_and_grow():
    def body(f):
        f.i32_const(1).emit("memory.grow")
        f.emit("drop")
        f.emit("memory.size")
    assert run_expr(body) == 2


def test_memory_grow_beyond_max_fails():
    builder = ModuleBuilder()
    builder.add_memory(1, 1)
    f = builder.function("f", results=["i32"])
    f.i32_const(1).emit("memory.grow")
    builder.export_function("f", f)
    instance = Instance(builder.build())
    assert instance.invoke("f") == [0xFFFFFFFF]  # -1


def test_data_segment_initialises_memory():
    builder = ModuleBuilder()
    builder.add_memory(1)
    builder.add_data(32, b"\x2a")
    f = builder.function("f", results=["i32"])
    f.i32_const(32).emit("i32.load8_u", 0, 0)
    builder.export_function("f", f)
    assert Instance(builder.build()).invoke("f") == [42]


# -- control flow -----------------------------------------------------------------

def test_if_else():
    def make(f):
        f.local_get(0)
        f.emit("if", "i32")
        f.i32_const(100)
        f.emit("else")
        f.i32_const(200)
        f.emit("end")
    assert run_expr(make, params=("i32",), args=(1,)) == 100
    assert run_expr(make, params=("i32",), args=(0,)) == 200


def test_if_without_else():
    def make(f):
        f.i32_const(0)
        f.local_set(1)
        f.local_get(0)
        f.emit("if", None)
        f.i32_const(7)
        f.local_set(1)
        f.emit("end")
        f.local_get(1)
    assert run_expr(make, params=("i32",), args=(1,), locals_=("i32",)) == 7
    assert run_expr(make, params=("i32",), args=(0,), locals_=("i32",)) == 0


def test_loop_with_br_if():
    """Sum 1..n with a loop."""
    def make(f):
        # locals: 0=n (param), 1=i, 2=sum
        f.emit("block", None)
        f.emit("loop", None)
        f.local_get(1).local_get(0).emit("i32.ge_u").emit("br_if", 1)
        f.local_get(1).i32_const(1).emit("i32.add").local_set(1)
        f.local_get(2).local_get(1).emit("i32.add").local_set(2)
        f.emit("br", 0)
        f.emit("end")
        f.emit("end")
        f.local_get(2)
    assert run_expr(make, params=("i32",), args=(5,),
                    locals_=("i32", "i32")) == 15


def test_br_table_dispatch():
    def make(f):
        f.emit("block", None)
        f.emit("block", None)
        f.emit("block", None)
        f.local_get(0)
        f.emit("br_table", (0, 1), 2)
        f.emit("end")
        f.i32_const(10)
        f.emit("return")
        f.emit("end")
        f.i32_const(20)
        f.emit("return")
        f.emit("end")
        f.i32_const(30)
    assert run_expr(make, params=("i32",), args=(0,)) == 10
    assert run_expr(make, params=("i32",), args=(1,)) == 20
    assert run_expr(make, params=("i32",), args=(7,)) == 30


def test_block_result_value():
    def make(f):
        f.emit("block", "i32")
        f.i32_const(9)
        f.emit("end")
    assert run_expr(make) == 9


def test_br_carries_block_result():
    def make(f):
        f.emit("block", "i32")
        f.i32_const(11)
        f.emit("br", 0)
        f.emit("end")
    assert run_expr(make) == 11


def test_early_return():
    def make(f):
        f.i32_const(1)
        f.emit("return")
        f.emit("unreachable")
    assert run_expr(make) == 1


def test_unreachable_traps():
    with pytest.raises(TrapUnreachable):
        run_expr(lambda f: f.emit("unreachable"))


def test_nested_function_calls():
    builder = ModuleBuilder()
    double = builder.function("double", params=["i32"], results=["i32"])
    double.local_get(0).i32_const(2).emit("i32.mul")
    quad = builder.function("quad", params=["i32"], results=["i32"])
    quad.local_get(0)
    quad.call(double)
    quad.call(double)
    builder.export_function("quad", quad)
    assert Instance(builder.build()).invoke("quad", [5]) == [20]


def test_call_indirect():
    builder = ModuleBuilder()
    one = builder.function("one", results=["i32"])
    one.i32_const(1)
    two = builder.function("two", results=["i32"])
    two.i32_const(2)
    builder.add_table_entry(0, one)
    builder.add_table_entry(1, two)
    caller = builder.function("caller", params=["i32"], results=["i32"])
    caller.local_get(0)
    caller.emit("call_indirect", 0)  # type index filled by builder interning
    builder.export_function("caller", caller)
    module = builder.build()
    # Fix the call_indirect type index to the () -> i32 type.
    from repro.wasm import FuncType as FT, I32 as _I32
    type_index = module.add_type(FT((), (_I32,)))
    body = module.functions[-1].body
    for i, instr in enumerate(body):
        if instr.op == "call_indirect":
            from repro.wasm import Instr
            body[i] = Instr("call_indirect", type_index)
    instance = Instance(module)
    assert instance.invoke("caller", [0]) == [1]
    assert instance.invoke("caller", [1]) == [2]
    with pytest.raises(TrapIndirectCall):
        instance.invoke("caller", [9])


def test_host_function_import():
    builder = ModuleBuilder()
    log_index = builder.import_function("env", "log", params=["i32"])
    f = builder.function("f", params=["i32"])
    f.local_get(0)
    f.emit("call", log_index)
    builder.export_function("f", f)
    seen = []
    host = HostFunc(FuncType((I32,), ()),
                    lambda inst, args: seen.append(args[0]) or [])
    instance = Instance(builder.build(), {("env", "log"): host})
    instance.invoke("f", [99])
    assert seen == [99]


def test_missing_import_raises():
    builder = ModuleBuilder()
    builder.import_function("env", "log", params=["i32"])
    f = builder.function("f", results=["i32"])
    f.i32_const(0)
    builder.export_function("f", f)
    with pytest.raises(KeyError):
        Instance(builder.build())


def test_import_signature_mismatch_raises():
    builder = ModuleBuilder()
    builder.import_function("env", "log", params=["i32"])
    f = builder.function("f", results=["i32"])
    f.i32_const(0)
    builder.export_function("f", f)
    bad = HostFunc(FuncType((), ()), lambda inst, args: [])
    with pytest.raises(TypeError):
        Instance(builder.build(), {("env", "log"): bad})


# -- limits ----------------------------------------------------------------------

def test_fuel_exhaustion():
    builder = ModuleBuilder()
    f = builder.function("spin")
    f.emit("loop", None)
    f.emit("br", 0)
    f.emit("end")
    builder.export_function("spin", f)
    instance = Instance(builder.build(), limits=ExecutionLimits(fuel=1000))
    with pytest.raises(TrapOutOfFuel):
        instance.invoke("spin")


def test_call_depth_limit():
    builder = ModuleBuilder()
    f = builder.function("rec")
    f.call("rec")
    builder.export_function("rec", f)
    instance = Instance(builder.build(),
                        limits=ExecutionLimits(call_depth=10))
    with pytest.raises(TrapStackOverflow):
        instance.invoke("rec")


# -- floats ------------------------------------------------------------------------

def test_float_arithmetic():
    assert run_expr(lambda f: f.emit("f64.const", 1.5)
                    .emit("f64.const", 2.25).emit("f64.add"),
                    results=("f64",)) == 3.75


def test_f32_rounds_to_single_precision():
    result = run_expr(lambda f: f.emit("f32.const", 0.1)
                      .emit("f32.const", 0.2).emit("f32.add"),
                      results=("f32",))
    import struct
    expected = struct.unpack("<f", struct.pack(
        "<f", struct.unpack("<f", struct.pack("<f", 0.1))[0]
        + struct.unpack("<f", struct.pack("<f", 0.2))[0]))[0]
    assert result == expected


def test_trunc_overflow_traps():
    with pytest.raises(TrapIntegerOverflow):
        run_expr(lambda f: f.emit("f64.const", 1e30)
                 .emit("i32.trunc_f64_s"))


def test_conversions():
    assert run_expr(lambda f: f.i64_const(-1).emit("i32.wrap_i64")) \
        == 0xFFFFFFFF
    assert run_expr(lambda f: f.i32_const(-1).emit("i64.extend_i32_s"),
                    results=("i64",)) == 0xFFFFFFFFFFFFFFFF
    assert run_expr(lambda f: f.i32_const(-1).emit("i64.extend_i32_u"),
                    results=("i64",)) == 0xFFFFFFFF
    assert run_expr(lambda f: f.emit("f64.const", -3.9)
                    .emit("i32.trunc_f64_s")) == 0xFFFFFFFD  # -3


def test_reinterpret_roundtrip():
    assert run_expr(lambda f: f.emit("f64.const", 1.0)
                    .emit("i64.reinterpret_f64"),
                    results=("i64",)) == 0x3FF0000000000000


# -- differential property test ------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(a=st.integers(0, 2**32 - 1), b=st.integers(0, 2**32 - 1),
       op=st.sampled_from(["i32.add", "i32.sub", "i32.mul", "i32.and",
                           "i32.or", "i32.xor"]))
def test_property_i32_binops_match_python(a, b, op):
    result = run_expr(lambda f: f.i32_const(a).i32_const(b).emit(op))
    python = {"i32.add": a + b, "i32.sub": a - b, "i32.mul": a * b,
              "i32.and": a & b, "i32.or": a | b, "i32.xor": a ^ b}[op]
    assert result == python & 0xFFFFFFFF

"""Float semantics tests for the interpreter (IEEE corner cases)."""

import math
import struct

import pytest

from repro.wasm import Instance, ModuleBuilder, TrapIntegerOverflow


def run(emit, results=("f64",), params=(), args=()):
    builder = ModuleBuilder()
    f = builder.function("f", params=params, results=results)
    emit(f)
    builder.export_function("f", f)
    return Instance(builder.build()).invoke("f", args)[0]


def test_nearest_ties_to_even():
    assert run(lambda f: f.emit("f64.const", 2.5).emit("f64.nearest")) \
        == 2.0
    assert run(lambda f: f.emit("f64.const", 3.5).emit("f64.nearest")) \
        == 4.0
    assert run(lambda f: f.emit("f64.const", -0.5).emit("f64.nearest")) \
        == 0.0


def test_min_max_nan_propagation():
    result = run(lambda f: f.emit("f64.const", math.nan)
                 .emit("f64.const", 1.0).emit("f64.min"))
    assert math.isnan(result)
    result = run(lambda f: f.emit("f64.const", 2.0)
                 .emit("f64.const", math.nan).emit("f64.max"))
    assert math.isnan(result)


def test_division_by_zero_gives_infinity():
    assert run(lambda f: f.emit("f64.const", 1.0)
               .emit("f64.const", 0.0).emit("f64.div")) == math.inf
    assert run(lambda f: f.emit("f64.const", -1.0)
               .emit("f64.const", 0.0).emit("f64.div")) == -math.inf
    assert math.isnan(run(lambda f: f.emit("f64.const", 0.0)
                          .emit("f64.const", 0.0).emit("f64.div")))


def test_copysign():
    assert run(lambda f: f.emit("f64.const", 3.0)
               .emit("f64.const", -1.0).emit("f64.copysign")) == -3.0
    assert run(lambda f: f.emit("f64.const", -3.0)
               .emit("f64.const", 1.0).emit("f64.copysign")) == 3.0


def test_sqrt():
    assert run(lambda f: f.emit("f64.const", 9.0).emit("f64.sqrt")) == 3.0


def test_floor_ceil_trunc():
    assert run(lambda f: f.emit("f64.const", -1.5).emit("f64.floor")) \
        == -2.0
    assert run(lambda f: f.emit("f64.const", -1.5).emit("f64.ceil")) \
        == -1.0
    assert run(lambda f: f.emit("f64.const", -1.5).emit("f64.trunc")) \
        == -1.0


def test_f32_demote_rounds():
    value = 1.0000000001
    got = run(lambda f: f.emit("f64.const", value)
              .emit("f32.demote_f64"), results=("f32",))
    expected = struct.unpack("<f", struct.pack("<f", value))[0]
    assert got == expected


def test_promote_preserves():
    got = run(lambda f: f.emit("f32.const", 0.5)
              .emit("f64.promote_f32"))
    assert got == 0.5


def test_trunc_nan_traps():
    with pytest.raises(TrapIntegerOverflow):
        run(lambda f: f.emit("f64.const", math.nan)
            .emit("i32.trunc_f64_s"), results=("i32",))


def test_trunc_boundary_values():
    assert run(lambda f: f.emit("f64.const", 2147483647.0)
               .emit("i32.trunc_f64_s"), results=("i32",)) == 0x7FFFFFFF
    with pytest.raises(TrapIntegerOverflow):
        run(lambda f: f.emit("f64.const", 2147483648.0)
            .emit("i32.trunc_f64_s"), results=("i32",))
    assert run(lambda f: f.emit("f64.const", -2147483648.0)
               .emit("i32.trunc_f64_s"), results=("i32",)) == 0x80000000


def test_unsigned_convert():
    assert run(lambda f: f.i32_const(-1).emit("f64.convert_i32_u")) \
        == 4294967295.0
    assert run(lambda f: f.i32_const(-1).emit("f64.convert_i32_s")) \
        == -1.0


def test_float_compares_push_i32():
    assert run(lambda f: f.emit("f64.const", 1.0)
               .emit("f64.const", 2.0).emit("f64.lt"),
               results=("i32",)) == 1
    # NaN compares false with everything (ne is true).
    assert run(lambda f: f.emit("f64.const", math.nan)
               .emit("f64.const", math.nan).emit("f64.eq"),
               results=("i32",)) == 0
    assert run(lambda f: f.emit("f64.const", math.nan)
               .emit("f64.const", math.nan).emit("f64.ne"),
               results=("i32",)) == 1


def test_float_memory_roundtrip():
    def body(f):
        f.i32_const(0).emit("f64.const", -123.456).emit("f64.store", 3, 0)
        f.i32_const(0).emit("f64.load", 3, 0)
    builder = ModuleBuilder()
    builder.add_memory(1)
    fn = builder.function("f", results=["f64"])
    body(fn)
    builder.export_function("f", fn)
    assert Instance(builder.build()).invoke("f") == [-123.456]


def test_f32_store_narrows():
    builder = ModuleBuilder()
    builder.add_memory(1)
    fn = builder.function("f", results=["f32"])
    fn.i32_const(0).emit("f64.const", 0.1).emit("f32.demote_f64")
    fn.emit("f32.store", 2, 0)
    fn.i32_const(0).emit("f32.load", 2, 0)
    builder.export_function("f", fn)
    got = Instance(builder.build()).invoke("f")[0]
    assert got == struct.unpack("<f", struct.pack("<f", 0.1))[0]

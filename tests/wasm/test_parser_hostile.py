"""Structural fuzz suite for the untrusted-module ingestion path.

Over 200+ deterministic mutants of a real contract binary (plus the
targeted adversarial payloads), the only outcomes allowed out of
:func:`repro.wasm.load_untrusted_module` are a successfully loaded
module or a typed :class:`~repro.resilience.MalformedModule` — never a
raw Python exception and never a hang.  The no-hang property is
enforced for real: the corpus also runs through the parallel executor
under a per-task wall-clock cap, so a looping parser shows up as a
``TaskTimeout`` failure instead of wedging the suite.
"""

from __future__ import annotations

import time

import pytest

from repro.benchgen.hostile import (base_module_bytes,
                                    build_hostile_corpus,
                                    build_resource_hostile_modules)
from repro.parallel import run_tasks
from repro.resilience import MalformedModule
from repro.wasm import IngestBudget, load_untrusted_module
from repro.wasm.interpreter import (ExecutionLimits, Instance, Trap,
                                    TrapResourceLimit)
from repro.wasm.leb128 import ParseError, Reader, decode_unsigned
from repro.wasm.parser import parse_module

CORPUS = build_hostile_corpus(seed=0, mutants=220)


def test_corpus_is_large_enough():
    assert len(CORPUS) >= 200
    kinds = {sample.kind for sample in CORPUS}
    assert kinds == {"truncate", "bitflip", "splice", "payload"}


@pytest.mark.parametrize("sample", CORPUS, ids=lambda s: s.name)
def test_only_typed_diagnostics_escape(sample):
    try:
        module = load_untrusted_module(sample.data, sample_id=sample.name)
    except MalformedModule as exc:
        # Diagnostics carry ingest-stage context, not a bare message.
        assert exc.stage == "ingest"
        assert not exc.retryable
        assert str(exc)
    else:
        # A mutant that stayed well-formed must be a real module.
        assert module.types is not None


def test_structural_mutants_mostly_rejected():
    rejected = 0
    for sample in CORPUS:
        try:
            load_untrusted_module(sample.data)
        except MalformedModule:
            rejected += 1
    # Truncations and targeted payloads are all malformed; only some
    # bit flips land in don't-care bytes.
    assert rejected > len(CORPUS) // 2


def test_diagnostics_carry_offset_and_section():
    located = with_section = 0
    for sample in CORPUS:
        try:
            load_untrusted_module(sample.data)
        except MalformedModule as exc:
            located += int(exc.offset is not None)
            with_section += int(exc.section is not None)
    assert located > 50
    assert with_section > 50


def _ingest_worker(sample):
    """Module-level so the no-hang batch can cross process boundaries."""
    try:
        load_untrusted_module(sample.data, sample_id=sample.name)
        return "ok"
    except MalformedModule:
        return "malformed"


def test_no_hangs_under_wall_clock_cap():
    """The whole corpus parses within a hard per-task wall clock."""
    started = time.monotonic()
    results = run_tasks(_ingest_worker, CORPUS, jobs=2, timeout_s=20.0)
    elapsed = time.monotonic() - started
    bad = [(CORPUS[r.index].name, r.error_type)
           for r in results if not r.ok]
    assert bad == []
    assert {r.value for r in results} <= {"ok", "malformed"}
    assert elapsed < 120.0


# -- resource-hostile (valid but abusive) modules ----------------------------

@pytest.mark.parametrize("name,module",
                         build_resource_hostile_modules(),
                         ids=lambda value: value if isinstance(value, str)
                         else "")
def test_metered_interpreter_contains_resource_abuse(name, module):
    limits = ExecutionLimits(fuel=200_000, deadline_s=5.0,
                             max_memory_pages=64)
    instance = Instance(module, {}, limits=limits)
    started = time.monotonic()
    with pytest.raises(Trap):
        instance.invoke("attack", [])
    assert time.monotonic() - started < 10.0
    assert len(instance.memory) <= 64 * 65536


def test_memory_grow_respects_cap():
    _, module = build_resource_hostile_modules()[0]
    instance = Instance(module, {}, limits=ExecutionLimits(
        fuel=50_000, max_memory_pages=8))
    with pytest.raises(Trap):
        instance.invoke("attack", [])
    assert len(instance.memory) <= 8 * 65536


def test_declared_memory_over_cap_is_rejected_at_instantiation():
    from repro.wasm.builder import ModuleBuilder
    builder = ModuleBuilder()
    builder.add_memory(4096)
    module = builder.build()
    with pytest.raises(TrapResourceLimit):
        Instance(module, {}, limits=ExecutionLimits(max_memory_pages=64))


# -- ingestion budgets -------------------------------------------------------

def test_module_byte_budget():
    data = base_module_bytes()
    with pytest.raises(MalformedModule) as info:
        load_untrusted_module(data, budget=IngestBudget(
            max_module_bytes=16))
    assert "budget" in str(info.value)


def test_function_count_budget():
    data = base_module_bytes()
    with pytest.raises(MalformedModule):
        load_untrusted_module(data, budget=IngestBudget(max_functions=1))


def test_valid_module_roundtrips_through_ingestion():
    module = load_untrusted_module(base_module_bytes())
    assert module.export_index("apply", "func") is not None


# -- targeted leb128 regressions ---------------------------------------------

def test_leb128_overlong_encoding_rejected():
    # 6 continuation bytes for a u32 — valid value, invalid encoding.
    with pytest.raises(ParseError):
        Reader(b"\x80\x80\x80\x80\x80\x01").u32()


def test_leb128_u32_out_of_range_rejected():
    # 5 bytes encoding 2^32 exactly.
    with pytest.raises(ParseError):
        Reader(b"\x80\x80\x80\x80\x10").u32()


def test_leb128_truncated_rejected():
    with pytest.raises(ParseError):
        decode_unsigned(b"\xff\xff")


def test_leb128_error_is_a_valueerror():
    # Callers that predate the hardening catch ValueError.
    assert issubclass(ParseError, ValueError)


def test_vec_count_cannot_exceed_remaining_bytes():
    reader = Reader(b"\xff\xff\xff\xff\x0f")
    with pytest.raises(ParseError):
        reader.vec("types")


def test_huge_locals_rejected_before_allocation():
    sample = next(s for s in CORPUS if s.name == "huge-locals")
    started = time.monotonic()
    with pytest.raises(ParseError):
        parse_module(sample.data)
    # The point of the pre-expansion cap: rejection is O(1), not O(n).
    assert time.monotonic() - started < 1.0

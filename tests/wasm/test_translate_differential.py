"""Differential testing: translated vs generic interpreter.

The direct-threaded translation layer (``repro.wasm.translate``) is an
optimisation, not a second semantics: every observable — traces, trap
types and messages, remaining fuel, memory, verdicts — must be
byte-identical to the generic reference interpreter in
``repro.wasm.interpreter``.  These tests run the Table 4/5 corpus and
the hostile corpora through both engines and assert exactly that.
"""

from __future__ import annotations

import pytest

from repro.benchgen.corpus import build_table4_corpus, obfuscated_variant
from repro.benchgen.hostile import (build_hostile_corpus,
                                    build_resource_hostile_modules)
from repro.engine.deploy import setup_chain
from repro.eosio.chain import Action, ApplyContext, WasmContract
from repro.eosio.errors import ChainError
from repro.eosio.host import build_host_imports
from repro.eosio.name import N
from repro.harness import run_wasai
from repro.instrument import instrument_module
from repro.wasm import (ExecutionLimits, HostFunc, Instance, Trap,
                        parse_module, validate_module)
from repro.wasm.translate import clear_translation_cache


@pytest.fixture(scope="module")
def corpus():
    return build_table4_corpus(scale=0.01)


def _campaign_fingerprint(module, abi, translate: bool):
    """Everything observable from one WASAI campaign."""
    run = run_wasai(module, abi,
                    limits=ExecutionLimits(translate=translate))
    findings = {vuln_type: (finding.detected, finding.evidence)
                for vuln_type, finding in run.scan.findings.items()}
    return (findings, tuple(run.scan.divergences),
            run.report.iterations, tuple(sorted(run.report.covered)))


def _apply_fingerprint(module, abi, translate: bool):
    """One apply() of the instrumented contract: the full hook trace,
    the host-call journal, the outcome and the remaining fuel."""
    instrumented, site_table = instrument_module(module)
    contract = WasmContract(instrumented, abi, site_table)
    limits = ExecutionLimits(translate=translate)
    chain = setup_chain(limits=limits)
    account = chain.set_contract("victim", contract)
    action = Action(account, N("transfer"), [account], b"\x00" * 32)
    ctx = ApplyContext(chain, account, account, action, False)
    imports = build_host_imports(chain, ctx)
    for imp in instrumented.imports:
        if imp.kind == "func" and imp.module == "wasabi":
            imports[(imp.module, imp.name)] = contract._hook(
                chain, ctx, imp.name, instrumented.types[imp.desc])
    instance = Instance(instrumented, imports, limits=limits)
    error = None
    try:
        instance.invoke("apply", [ctx.receiver, ctx.code, ctx.action_name])
    except (ChainError, Trap) as exc:
        error = f"{type(exc).__name__}: {exc}"
    return (tuple(ctx.wasm_trace), tuple(ctx.host_calls), error,
            instance.fuel, bytes(instance.memory))


def test_table4_corpus_verdicts_identical(corpus):
    assert corpus, "corpus builder returned no samples"
    for sample in corpus[:8]:
        generic = _campaign_fingerprint(sample.module, sample.contract.abi,
                                        translate=False)
        translated = _campaign_fingerprint(sample.module,
                                           sample.contract.abi,
                                           translate=True)
        assert generic == translated, \
            f"campaign diverged on {sample.vuln_type}/{sample.variant}"


def test_table5_obfuscated_verdicts_identical(corpus):
    for sample in [obfuscated_variant(s) for s in corpus[:4]]:
        generic = _campaign_fingerprint(sample.module, sample.contract.abi,
                                        translate=False)
        translated = _campaign_fingerprint(sample.module,
                                           sample.contract.abi,
                                           translate=True)
        assert generic == translated, \
            f"campaign diverged on obfuscated {sample.vuln_type}"


def test_apply_traces_byte_identical(corpus):
    """The per-action hook trace — not just the verdict — must match."""
    for sample in corpus[:6]:
        generic = _apply_fingerprint(sample.module, sample.contract.abi,
                                     translate=False)
        translated = _apply_fingerprint(sample.module, sample.contract.abi,
                                        translate=True)
        assert generic == translated, \
            f"apply trace diverged on {sample.vuln_type}"
        assert generic[0], "expected a non-empty hook trace"


@pytest.mark.parametrize("name,module",
                         build_resource_hostile_modules())
def test_resource_hostile_traps_identical(name, module):
    outcomes = {}
    for translate in (False, True):
        limits = ExecutionLimits(fuel=20_000, max_memory_pages=64,
                                 translate=translate)
        instance = Instance(module, limits=limits)
        try:
            result = instance.invoke("attack", [])
            outcome = ("ok", tuple(result))
        except Trap as exc:
            outcome = (type(exc).__name__, str(exc))
        outcomes[translate] = (outcome, instance.fuel,
                               len(instance.memory))
    assert outcomes[False] == outcomes[True], f"diverged on {name}"


def _null_imports(module):
    """Permissive host stubs so import-bearing mutants can execute."""
    imports = {}
    for imp in module.imports:
        if imp.kind != "func":
            continue
        func_type = module.types[imp.desc]
        results = tuple(0.0 if t.is_float else 0
                        for t in func_type.results)
        imports[(imp.module, imp.name)] = HostFunc(
            func_type, lambda inst, args, _r=results: list(_r))
    return imports


def test_hostile_mutants_differential():
    """Structural mutants that survive parsing and validation must
    execute identically under both engines."""
    checked = 0
    for sample in build_hostile_corpus(mutants=120):
        try:
            module = parse_module(sample.data)
            validate_module(module)
        except Exception:
            continue
        imports = _null_imports(module)
        exports = [e for e in module.exports if e.kind == "func"][:2]
        for export in exports:
            func_type = module.function_type(export.index)
            args = [0.0 if t.is_float else 0 for t in func_type.params]
            outcomes = {}
            for translate in (False, True):
                limits = ExecutionLimits(fuel=50_000,
                                         max_memory_pages=64,
                                         translate=translate)
                try:
                    instance = Instance(module, imports, limits=limits)
                    result = instance.invoke(export.name, list(args))
                    outcome = ("ok", tuple(result), instance.fuel)
                except Trap as exc:
                    outcome = (type(exc).__name__, str(exc))
                except Exception as exc:
                    outcome = ("error", type(exc).__name__)
                outcomes[translate] = outcome
            assert outcomes[False] == outcomes[True], \
                f"mutant {sample.name}:{export.name} diverged"
            checked += 1
    assert checked > 0, "no hostile mutant survived to be executed"


def test_translation_cache_memoises():
    clear_translation_cache()
    from repro.wasm.translate import translation_cache_info
    corpus_sample = build_table4_corpus(scale=0.01)[0]
    module = corpus_sample.module
    limits = ExecutionLimits(translate=True)
    _apply_fingerprint(module, corpus_sample.contract.abi, translate=True)
    info = translation_cache_info()
    assert info["entries"] > 0
    assert info["translated"] > 0

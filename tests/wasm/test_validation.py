"""Tests for the type-checking validator / stack-typing pass."""

import pytest

from repro.wasm import (I32, I64, Instr, ModuleBuilder, ValidationError,
                        type_function, validate_module)


def build_single(emit, params=(), results=(), locals_=(), memory=True):
    builder = ModuleBuilder()
    if memory:
        builder.add_memory(1)
    f = builder.function("f", params=params, results=results, locals_=locals_)
    emit(f)
    builder.export_function("f", f)
    return builder.build()


def typings_for(module):
    return type_function(module, module.functions[0])


def test_well_typed_module_passes():
    module = build_single(lambda f: f.i32_const(1).i32_const(2)
                          .emit("i32.add"), results=("i32",))
    validate_module(module)


def test_stack_underflow_rejected():
    module = build_single(lambda f: f.emit("i32.add"), results=("i32",))
    with pytest.raises(ValidationError):
        validate_module(module)


def test_type_mismatch_rejected():
    module = build_single(lambda f: f.i32_const(1).i64_const(2)
                          .emit("i32.add"), results=("i32",))
    with pytest.raises(ValidationError):
        validate_module(module)


def test_missing_result_rejected():
    module = build_single(lambda f: f.emit("nop"), results=("i32",))
    with pytest.raises(ValidationError):
        validate_module(module)


def test_excess_values_rejected():
    module = build_single(lambda f: f.i32_const(1).i32_const(2),
                          results=("i32",))
    with pytest.raises(ValidationError):
        validate_module(module)


def test_local_index_out_of_range():
    module = build_single(lambda f: f.local_get(3), results=("i32",),
                          params=("i32",))
    with pytest.raises(ValidationError):
        validate_module(module)


def test_immutable_global_set_rejected():
    builder = ModuleBuilder()
    g = builder.add_global("i32", mutable=False, init=0)
    f = builder.function("f")
    f.i32_const(1).emit("global.set", g)
    with pytest.raises(ValidationError):
        validate_module(builder.build())


def test_branch_depth_out_of_range():
    module = build_single(lambda f: f.emit("br", 5))
    with pytest.raises(ValidationError):
        validate_module(module)


def test_unreachable_code_is_stack_polymorphic():
    # After unreachable, any instruction type-checks.
    def emit(f):
        f.emit("unreachable")
        f.emit("i32.add")  # operands are polymorphic
    validate_module(build_single(emit, results=("i32",)))


def test_typings_record_operand_types():
    module = build_single(lambda f: f.i32_const(1).i32_const(2)
                          .emit("i32.add"), results=("i32",))
    typings = typings_for(module)
    assert typings[0].pops == []
    assert typings[0].pushes == [I32]
    assert typings[2].pops == [I32, I32]
    assert typings[2].pushes == [I32]


def test_typings_for_memory_ops():
    def emit(f):
        f.i32_const(0).i64_const(5).emit("i64.store", 3, 0)
    module = build_single(emit)
    typings = typings_for(module)
    assert typings[2].pops == [I32, I64]


def test_typings_for_call():
    builder = ModuleBuilder()
    helper = builder.function("helper", params=["i64"], results=["i32"])
    helper.i32_const(0)
    caller = builder.function("caller", results=["i32"])
    caller.i64_const(9)
    caller.call(helper)
    module = builder.build()
    typings = type_function(module, module.functions[1])
    assert typings[1].pops == [I64]
    assert typings[1].pushes == [I32]


def test_typings_mark_dead_code():
    def emit(f):
        f.i32_const(1)
        f.emit("return")
        f.i32_const(2)
        f.emit("drop")
    module = build_single(emit, results=("i32",))
    typings = typings_for(module)
    assert typings[0].reachable
    assert typings[1].reachable
    assert not typings[2].reachable
    assert not typings[3].reachable


def test_select_type_propagation():
    def emit(f):
        f.i64_const(1).i64_const(2).i32_const(0).emit("select")
    module = build_single(emit, results=("i64",))
    typings = typings_for(module)
    assert typings[3].pops == [I64, I64, I32]
    assert typings[3].pushes == [I64]


def test_if_else_arms_must_agree():
    def emit(f):
        f.i32_const(1)
        f.emit("if", "i32")
        f.i32_const(1)
        f.emit("else")
        f.i64_const(2)  # wrong arm type
        f.emit("end")
    with pytest.raises(ValidationError):
        validate_module(build_single(emit, results=("i32",)))


def test_else_without_if_rejected():
    module = build_single(lambda f: f.emit("else"))
    with pytest.raises(ValidationError):
        validate_module(module)


def test_br_if_keeps_stack():
    def emit(f):
        f.emit("block", None)
        f.i32_const(1)
        f.emit("br_if", 0)
        f.emit("end")
    validate_module(build_single(emit))

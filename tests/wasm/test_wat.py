"""Tests for the WAT text renderer."""

from repro.benchgen import ContractConfig, generate_contract
from repro.wasm import Instr, ModuleBuilder
from repro.wasm.wat import (render_function, render_instruction,
                            render_module)


def test_render_simple_instructions():
    assert render_instruction(Instr("i32.add")) == "i32.add"
    assert render_instruction(Instr("i64.const", -5)) == "i64.const -5"
    assert render_instruction(Instr("local.get", 3)) == "local.get 3"


def test_render_memarg():
    assert render_instruction(Instr("i64.load", 3, 16)) \
        == "i64.load offset=16 align=8"
    assert render_instruction(Instr("i32.load", 0, 0)) == "i32.load"


def test_render_block_types():
    assert render_instruction(Instr("block", None)) == "block"
    assert render_instruction(Instr("if", "i32")) == "if (result i32)"


def test_render_br_table():
    assert render_instruction(Instr("br_table", (0, 1), 2)) \
        == "br_table 0 1 2"


def test_render_function_indents_control_flow():
    builder = ModuleBuilder()
    f = builder.function("f", params=["i32"], results=["i32"],
                         locals_=["i64"])
    f.local_get(0)
    f.emit("if", "i32")
    f.i32_const(1)
    f.emit("else")
    f.i32_const(2)
    f.emit("end")
    builder.export_function("f", f)
    module = builder.build()
    text = render_function(module, 0, "f")
    lines = text.splitlines()
    assert lines[0].startswith("(func $f (param i32) (result i32)")
    assert "  (local i64)" in lines
    # Instructions inside the if are indented one level deeper.
    assert any(line.startswith("    i32.const 1") for line in lines)
    assert text.endswith(")")


def test_render_whole_generated_contract():
    generated = generate_contract(ContractConfig(seed=1, maze_depth=2))
    text = render_module(generated.module)
    assert text.startswith("(module")
    assert text.endswith(")")
    assert '(import "env" "eosio_assert"' in text
    assert '(export "apply"' in text
    assert "(memory 1" in text
    assert "(elem (i32.const 0)" in text
    assert "call_indirect (type" in text


def test_render_distinguishes_obfuscated_variant():
    from repro.benchgen import obfuscate_module
    generated = generate_contract(ContractConfig(seed=2))
    plain = render_module(generated.module)
    obfuscated = render_module(obfuscate_module(generated.module, seed=2))
    assert "i64.popcnt" not in plain
    assert "i64.popcnt" in obfuscated


def test_render_data_segment_escapes():
    builder = ModuleBuilder()
    builder.add_memory(1)
    builder.add_data(0, b'ok"\x00\xff')
    f = builder.function("f")
    f.emit("nop")
    builder.export_function("f", f)
    text = render_module(builder.build())
    assert '(data (i32.const 0) "ok\\22\\00\\ff")' in text
